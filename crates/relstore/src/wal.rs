//! The write-ahead log: append-only redo records, CRC-framed, fsynced on
//! commit.
//!
//! Between checkpoints every table mutation appends one logical redo record
//! (`INSERT`/`UPDATE-CELL`/`UPDATE-ROW`/`DELETE`) bracketed by
//! `BEGIN`/`COMMIT` transaction markers. [`WalWriter::commit`] flushes and
//! `fsync`s, so a transaction is durable exactly when `commit` returns —
//! the paper's disk-block cost argument extended to the write path.
//!
//! Commits from concurrent writers are **group-committed**: each committer
//! appends its records under the append mutex, then joins a leader/follower
//! sync. The first committer to arrive becomes the leader, reads the current
//! end of the appended log, and issues one `fsync` that covers every record
//! appended so far — its own and any followers' that landed in the meantime.
//! Followers merely wait until the synced watermark passes their commit
//! offset. N contended committers therefore pay ~1–2 `fsync`s instead of N,
//! while a single-threaded committer still gets exactly one `fsync` per
//! commit. [`WalWriter::group_commit_stats`] exposes the commit/fsync
//! counters so benches and tests can observe the batching.
//!
//! Recovery (see [`scan_wal`] and [`apply_committed`]) is ARIES-lite, redo
//! only: scan the log from the front, stop at the first torn or corrupt
//! record (a CRC or framing failure — everything after it is discarded,
//! because a redo log cannot skip holes), and replay, in commit order, only
//! the operations of transactions whose `COMMIT` record survived. Records of
//! unfinished transactions are ignored, which is the entire rollback story:
//! nothing uncommitted ever reaches the page file. Byte layouts are
//! specified in `docs/STORAGE.md`.
//!
//! **Failure semantics** (see `docs/FAULTS.md`): a failed append truncates
//! the file back to the last good record so the tail stays scannable; a
//! failed fsync **poisons** the writer — every commit batched behind that
//! sync fails, and all subsequent writes are refused with
//! [`DsError::ReadOnly`]. A poisoned WAL is never retried: after a failed
//! `fsync` the kernel may have silently dropped the dirty pages, so
//! retry-and-report-success would ack commits that never reached disk.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use dataspread_obs::Counter;
use dataspread_posindex::RowKey;
use dataspread_types::{DsError, DsResult, Value};

use crate::binding::BindingMeta;
use crate::catalog::Catalog;
use crate::codec::{encode_value, put_str, put_u16, put_u32, put_u64, Cursor};
use crate::crc::crc32;
use crate::schema::Schema;
use crate::vfs::{os_vfs, Vfs, VfsFile};

/// Magic bytes opening a WAL file: `"DSWL"`.
pub const WAL_MAGIC: [u8; 4] = *b"DSWL";
/// On-disk WAL format version this build reads and writes.
pub const WAL_VERSION: u16 = 1;
/// Size of the WAL header in bytes.
pub const WAL_HEADER_SIZE: u64 = 24;
/// Sanity cap on a single record's payload.
const MAX_RECORD: u32 = 16 << 20;

const TAG_BEGIN: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_INSERT: u8 = 3;
const TAG_UPDATE_CELL: u8 = 4;
const TAG_UPDATE_ROW: u8 = 5;
const TAG_DELETE: u8 = 6;
const TAG_SHEET_CELL: u8 = 7;
const TAG_SHEET_GRID: u8 = 8;
const TAG_BIND_CREATE: u8 = 9;
const TAG_BIND_DROP: u8 = 10;
const TAG_CREATE_TABLE: u8 = 11;
const TAG_DROP_TABLE: u8 = 12;

/// Where recovery applies a committed record of a given tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplaySite {
    /// Transaction markers (`BEGIN`/`COMMIT`): consumed by
    /// [`committed_ops`] to delimit transactions; nothing to apply.
    Marker,
    /// Table records (DML and DDL): applied to the recovered catalog by
    /// [`apply_committed`].
    Table,
    /// Engine records (sheet edits, binding create/drop): surfaced as
    /// `LoadedCatalog::engine_ops` and replayed by the engine
    /// (`Workbook::open` in the `dataspread` crate).
    Engine,
}

/// One row of the WAL-tag registry: the on-disk tag byte, the record's
/// canonical name (exactly as documented in `docs/STORAGE.md` §2.3), and
/// where recovery replays it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalTagSpec {
    /// The on-disk tag byte.
    pub tag: u8,
    /// Canonical record name (`docs/STORAGE.md` §2.3 spelling).
    pub name: &'static str,
    /// Which layer replays a committed record of this tag.
    pub replay: ReplaySite,
}

/// Source-of-truth registry of every on-disk WAL record tag.
///
/// Adding a tag means adding a row here — `cargo run -p xcheck`
/// cross-checks that every registered tag has an encode site
/// (`push(TAG_…)`), a decode match arm, a replay match arm at its declared
/// [`ReplaySite`], and a `docs/STORAGE.md` table row, and that no `TAG_…`
/// constant exists outside the registry.
pub const WAL_TAGS: &[WalTagSpec] = &[
    WalTagSpec {
        tag: TAG_BEGIN,
        name: "BEGIN",
        replay: ReplaySite::Marker,
    },
    WalTagSpec {
        tag: TAG_COMMIT,
        name: "COMMIT",
        replay: ReplaySite::Marker,
    },
    WalTagSpec {
        tag: TAG_INSERT,
        name: "INSERT",
        replay: ReplaySite::Table,
    },
    WalTagSpec {
        tag: TAG_UPDATE_CELL,
        name: "UPDATE-CELL",
        replay: ReplaySite::Table,
    },
    WalTagSpec {
        tag: TAG_UPDATE_ROW,
        name: "UPDATE-ROW",
        replay: ReplaySite::Table,
    },
    WalTagSpec {
        tag: TAG_DELETE,
        name: "DELETE",
        replay: ReplaySite::Table,
    },
    WalTagSpec {
        tag: TAG_SHEET_CELL,
        name: "SHEET-CELL",
        replay: ReplaySite::Engine,
    },
    WalTagSpec {
        tag: TAG_SHEET_GRID,
        name: "SHEET-GRID",
        replay: ReplaySite::Engine,
    },
    WalTagSpec {
        tag: TAG_BIND_CREATE,
        name: "BIND-CREATE",
        replay: ReplaySite::Engine,
    },
    WalTagSpec {
        tag: TAG_BIND_DROP,
        name: "BIND-DROP",
        replay: ReplaySite::Engine,
    },
    WalTagSpec {
        tag: TAG_CREATE_TABLE,
        name: "CREATE-TABLE",
        replay: ReplaySite::Table,
    },
    WalTagSpec {
        tag: TAG_DROP_TABLE,
        name: "DROP-TABLE",
        replay: ReplaySite::Table,
    },
];

/// What a logged sheet-cell write holds: the *logical input*, not the
/// computed display value — a literal, or formula source text that the
/// engine re-parses (and re-evaluates) on replay.
#[derive(Clone, Debug, PartialEq)]
pub enum SheetCellContent {
    /// A literal value; `Value::Empty` clears the cell.
    Value(Value),
    /// Formula source text (`=`-prefixed).
    Formula(String),
}

/// A structural grid edit on a sheet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GridEditKind {
    /// Insert rows at `at`.
    InsertRows,
    /// Delete rows `[at, at + count)`.
    DeleteRows,
    /// Insert columns at `at`.
    InsertCols,
    /// Delete columns `[at, at + count)`.
    DeleteCols,
}

impl GridEditKind {
    fn code(self) -> u8 {
        match self {
            GridEditKind::InsertRows => 0,
            GridEditKind::DeleteRows => 1,
            GridEditKind::InsertCols => 2,
            GridEditKind::DeleteCols => 3,
        }
    }

    fn from_code(c: u8) -> DsResult<Self> {
        Ok(match c {
            0 => GridEditKind::InsertRows,
            1 => GridEditKind::DeleteRows,
            2 => GridEditKind::InsertCols,
            3 => GridEditKind::DeleteCols,
            other => return Err(DsError::Storage(format!("wal: bad grid edit kind {other}"))),
        })
    }
}

/// One logical redo operation against a named table — or, for the two
/// `Sheet*` variants, against a named sheet of the interface layer (replayed
/// by the engine, not by [`apply_committed`]).
#[derive(Clone, Debug, PartialEq)]
pub enum WalOp {
    /// A row inserted at display position `pos` with storage key `key`.
    Insert {
        /// Target table name.
        table: String,
        /// The row key the original execution assigned (replay re-forces it).
        key: RowKey,
        /// Display position of the insert.
        pos: u64,
        /// The conformed row values as stored.
        row: Vec<Value>,
    },
    /// One attribute of one row rewritten.
    UpdateCell {
        /// Target table name.
        table: String,
        /// Row key.
        key: RowKey,
        /// Schema column index.
        col: u32,
        /// The conformed new value.
        value: Value,
    },
    /// A full row replaced.
    UpdateRow {
        /// Target table name.
        table: String,
        /// Row key.
        key: RowKey,
        /// The conformed replacement row.
        row: Vec<Value>,
    },
    /// A row deleted.
    Delete {
        /// Target table name.
        table: String,
        /// Row key.
        key: RowKey,
    },
    /// One grid cell written on a sheet (interface side).
    SheetCell {
        /// Target sheet name.
        sheet: String,
        /// Zero-based display row.
        row: u32,
        /// Zero-based display column.
        col: u32,
        /// The logical input written.
        content: SheetCellContent,
    },
    /// A structural row/column edit on a sheet.
    SheetGrid {
        /// Target sheet name.
        sheet: String,
        /// Which structural edit.
        edit: GridEditKind,
        /// Zero-based row/column position of the edit.
        at: u32,
        /// Number of rows/columns inserted or deleted.
        count: u32,
    },
    /// A table binding registered on a sheet region (engine-replayed).
    BindCreate {
        /// The full binding description.
        meta: BindingMeta,
    },
    /// A table binding removed (engine-replayed).
    BindDrop {
        /// Id of the dropped binding.
        id: u64,
    },
    /// `CREATE TABLE`: the DDL redo record that lets table creation ride the
    /// log instead of forcing a checkpoint.
    CreateTable {
        /// New table name.
        table: String,
        /// The schema the table was created with.
        schema: Schema,
        /// Buffer-pool capacity (frames) the table was created with —
        /// replay restores it directly, because the workbook's configured
        /// default is not yet decoded when the WAL replays.
        pool_pages: u64,
    },
    /// `DROP TABLE` (DDL redo record).
    DropTable {
        /// Dropped table name.
        table: String,
    },
}

impl WalOp {
    /// Is this an interface-layer (sheet) operation? Sheet ops are skipped by
    /// [`apply_committed`] and surfaced to the engine for replay instead.
    pub fn is_sheet_op(&self) -> bool {
        matches!(self, WalOp::SheetCell { .. } | WalOp::SheetGrid { .. })
    }

    /// Is this an engine-layer operation — a sheet edit or a binding
    /// create/drop? Engine ops are skipped by [`apply_committed`] and
    /// surfaced to the engine for replay in commit order.
    pub fn is_engine_op(&self) -> bool {
        self.is_sheet_op() || matches!(self, WalOp::BindCreate { .. } | WalOp::BindDrop { .. })
    }
}

/// One framed WAL record: a transaction marker or an operation.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// Transaction `txn` begins.
    Begin {
        /// Transaction id.
        txn: u64,
    },
    /// Transaction `txn` is durable once this record is on disk.
    Commit {
        /// Transaction id.
        txn: u64,
    },
    /// A redo operation belonging to transaction `txn`.
    Op {
        /// Transaction id.
        txn: u64,
        /// The operation.
        op: WalOp,
    },
}

fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    match rec {
        WalRecord::Begin { txn } => {
            buf.push(TAG_BEGIN);
            put_u64(&mut buf, *txn);
        }
        WalRecord::Commit { txn } => {
            buf.push(TAG_COMMIT);
            put_u64(&mut buf, *txn);
        }
        WalRecord::Op { txn, op } => match op {
            WalOp::Insert {
                table,
                key,
                pos,
                row,
            } => {
                buf.push(TAG_INSERT);
                put_u64(&mut buf, *txn);
                put_str(&mut buf, table);
                put_u64(&mut buf, *key);
                put_u64(&mut buf, *pos);
                put_u16(&mut buf, row.len() as u16);
                for v in row {
                    encode_value(&mut buf, v);
                }
            }
            WalOp::UpdateCell {
                table,
                key,
                col,
                value,
            } => {
                buf.push(TAG_UPDATE_CELL);
                put_u64(&mut buf, *txn);
                put_str(&mut buf, table);
                put_u64(&mut buf, *key);
                put_u32(&mut buf, *col);
                encode_value(&mut buf, value);
            }
            WalOp::UpdateRow { table, key, row } => {
                buf.push(TAG_UPDATE_ROW);
                put_u64(&mut buf, *txn);
                put_str(&mut buf, table);
                put_u64(&mut buf, *key);
                put_u16(&mut buf, row.len() as u16);
                for v in row {
                    encode_value(&mut buf, v);
                }
            }
            WalOp::Delete { table, key } => {
                buf.push(TAG_DELETE);
                put_u64(&mut buf, *txn);
                put_str(&mut buf, table);
                put_u64(&mut buf, *key);
            }
            WalOp::SheetCell {
                sheet,
                row,
                col,
                content,
            } => {
                buf.push(TAG_SHEET_CELL);
                put_u64(&mut buf, *txn);
                put_str(&mut buf, sheet);
                put_u32(&mut buf, *row);
                put_u32(&mut buf, *col);
                match content {
                    SheetCellContent::Value(v) => {
                        buf.push(0);
                        encode_value(&mut buf, v);
                    }
                    SheetCellContent::Formula(src) => {
                        buf.push(1);
                        put_str(&mut buf, src);
                    }
                }
            }
            WalOp::SheetGrid {
                sheet,
                edit,
                at,
                count,
            } => {
                buf.push(TAG_SHEET_GRID);
                put_u64(&mut buf, *txn);
                put_str(&mut buf, sheet);
                buf.push(edit.code());
                put_u32(&mut buf, *at);
                put_u32(&mut buf, *count);
            }
            WalOp::BindCreate { meta } => {
                buf.push(TAG_BIND_CREATE);
                put_u64(&mut buf, *txn);
                meta.encode(&mut buf);
            }
            WalOp::BindDrop { id } => {
                buf.push(TAG_BIND_DROP);
                put_u64(&mut buf, *txn);
                put_u64(&mut buf, *id);
            }
            WalOp::CreateTable {
                table,
                schema,
                pool_pages,
            } => {
                buf.push(TAG_CREATE_TABLE);
                put_u64(&mut buf, *txn);
                put_str(&mut buf, table);
                schema.encode(&mut buf);
                put_u64(&mut buf, *pool_pages);
            }
            WalOp::DropTable { table } => {
                buf.push(TAG_DROP_TABLE);
                put_u64(&mut buf, *txn);
                put_str(&mut buf, table);
            }
        },
    }
    buf
}

fn decode_record(payload: &[u8]) -> DsResult<WalRecord> {
    let mut cur = Cursor::new(payload);
    let tag = cur.u8()?;
    let txn = cur.u64()?;
    let rec = match tag {
        TAG_BEGIN => WalRecord::Begin { txn },
        TAG_COMMIT => WalRecord::Commit { txn },
        TAG_INSERT => {
            let table = cur.str()?;
            let key = cur.u64()?;
            let pos = cur.u64()?;
            let n = cur.u16()? as usize;
            let mut row = Vec::with_capacity(n);
            for _ in 0..n {
                row.push(cur.value()?);
            }
            WalRecord::Op {
                txn,
                op: WalOp::Insert {
                    table,
                    key,
                    pos,
                    row,
                },
            }
        }
        TAG_UPDATE_CELL => {
            let table = cur.str()?;
            let key = cur.u64()?;
            let col = cur.u32()?;
            let value = cur.value()?;
            WalRecord::Op {
                txn,
                op: WalOp::UpdateCell {
                    table,
                    key,
                    col,
                    value,
                },
            }
        }
        TAG_UPDATE_ROW => {
            let table = cur.str()?;
            let key = cur.u64()?;
            let n = cur.u16()? as usize;
            let mut row = Vec::with_capacity(n);
            for _ in 0..n {
                row.push(cur.value()?);
            }
            WalRecord::Op {
                txn,
                op: WalOp::UpdateRow { table, key, row },
            }
        }
        TAG_DELETE => {
            let table = cur.str()?;
            let key = cur.u64()?;
            WalRecord::Op {
                txn,
                op: WalOp::Delete { table, key },
            }
        }
        TAG_SHEET_CELL => {
            let sheet = cur.str()?;
            let row = cur.u32()?;
            let col = cur.u32()?;
            let content = match cur.u8()? {
                0 => SheetCellContent::Value(cur.value()?),
                1 => SheetCellContent::Formula(cur.str()?),
                other => {
                    return Err(DsError::Storage(format!(
                        "wal: bad sheet cell content kind {other}"
                    )))
                }
            };
            WalRecord::Op {
                txn,
                op: WalOp::SheetCell {
                    sheet,
                    row,
                    col,
                    content,
                },
            }
        }
        TAG_SHEET_GRID => {
            let sheet = cur.str()?;
            let edit = GridEditKind::from_code(cur.u8()?)?;
            let at = cur.u32()?;
            let count = cur.u32()?;
            WalRecord::Op {
                txn,
                op: WalOp::SheetGrid {
                    sheet,
                    edit,
                    at,
                    count,
                },
            }
        }
        TAG_BIND_CREATE => WalRecord::Op {
            txn,
            op: WalOp::BindCreate {
                meta: BindingMeta::decode(&mut cur)?,
            },
        },
        TAG_BIND_DROP => WalRecord::Op {
            txn,
            op: WalOp::BindDrop { id: cur.u64()? },
        },
        TAG_CREATE_TABLE => {
            let table = cur.str()?;
            let schema = Schema::decode(&mut cur)?;
            let pool_pages = cur.u64()?;
            WalRecord::Op {
                txn,
                op: WalOp::CreateTable {
                    table,
                    schema,
                    pool_pages,
                },
            }
        }
        TAG_DROP_TABLE => WalRecord::Op {
            txn,
            op: WalOp::DropTable { table: cur.str()? },
        },
        other => return Err(DsError::Storage(format!("wal: bad record tag {other}"))),
    };
    if !cur.is_empty() {
        return Err(DsError::Storage("wal: trailing bytes in record".into()));
    }
    Ok(rec)
}

fn encode_header(generation: u64) -> [u8; WAL_HEADER_SIZE as usize] {
    let mut h = [0u8; WAL_HEADER_SIZE as usize];
    h[0..4].copy_from_slice(&WAL_MAGIC);
    h[4..6].copy_from_slice(&WAL_VERSION.to_le_bytes());
    // h[6..8] flags, zero.
    h[8..16].copy_from_slice(&generation.to_le_bytes());
    let crc = crc32(&h[0..16]);
    h[16..20].copy_from_slice(&crc.to_le_bytes());
    // h[20..24] padding, zero.
    h
}

struct WalInner {
    file: Box<dyn VfsFile>,
    open_txn: Option<u64>,
    next_txn: u64,
    /// Bytes appended so far (header included). A committer's records are
    /// durable once the sync watermark reaches the value of `len` observed
    /// right after its `COMMIT` record was appended.
    len: u64,
}

/// Group-commit sync state: the durable watermark plus the leader flag.
/// Guarded by its own mutex so followers can wait on the condvar without
/// blocking appends, and the leader's `fsync` runs outside the append lock.
struct SyncState {
    /// Every byte below this offset is known durable.
    synced: u64,
    /// True while some thread (the leader) is inside `fsync`.
    syncing: bool,
}

/// Monotonic counters for observing group-commit batching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Transactions committed (explicit commits plus autocommits).
    pub commits: u64,
    /// `fsync` calls issued. Under contention this is far below `commits`.
    pub fsyncs: u64,
}

/// Clonable handles to this writer's counters, so a metrics registry can
/// expose them without routing the append path through a lookup.
#[derive(Clone, Debug, Default)]
pub struct WalCounters {
    /// Framed records appended (BEGIN/COMMIT frames included).
    pub appends: Counter,
    /// Transactions committed (explicit commits plus autocommits).
    pub commits: Counter,
    /// `fsync` calls issued by the group-commit leader.
    pub fsyncs: Counter,
    /// Times the writer flipped into the sticky poisoned state (0 or 1 per
    /// writer — poisoning is idempotent and the first reason wins).
    pub poison_flips: Counter,
}

/// Appending side of the log. All methods take `&self` (a mutex guards the
/// file) so tables can log through a shared [`std::sync::Arc`] handle.
///
/// A statement-scoped transaction is opened with [`WalWriter::begin`] and
/// sealed with [`WalWriter::commit`]; an operation logged outside any open
/// transaction is auto-committed (`BEGIN` + op + `COMMIT` + group-synced
/// fsync).
pub struct WalWriter {
    path: PathBuf,
    inner: Mutex<WalInner>,
    /// Second handle to the same file, used only for `sync` so the
    /// leader's fsync never holds the append mutex.
    sync_file: Box<dyn VfsFile>,
    sync_state: Mutex<SyncState>,
    sync_cv: Condvar,
    counters: WalCounters,
    /// Sticky fault flag (fsyncgate semantics): once set, every write path
    /// is refused with [`DsError::ReadOnly`]. Mirrors `poison_reason`; the
    /// atomic makes the hot-path check lock-free.
    poisoned: AtomicBool,
    poison_reason: Mutex<Option<String>>,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("path", &self.path)
            .field("poisoned", &self.is_poisoned())
            .finish()
    }
}

impl WalWriter {
    /// Create (or reset) the log at `path` for checkpoint `generation`.
    /// Truncates any previous contents and fsyncs the fresh header.
    pub fn create(path: impl AsRef<Path>, generation: u64) -> DsResult<WalWriter> {
        Self::create_with(&os_vfs(), path, generation)
    }

    /// [`WalWriter::create`] against an explicit [`Vfs`].
    pub fn create_with(
        vfs: &Arc<dyn Vfs>,
        path: impl AsRef<Path>,
        generation: u64,
    ) -> DsResult<WalWriter> {
        let path = path.as_ref().to_path_buf();
        let file = vfs
            .create(&path)
            .map_err(|e| DsError::io("wal create", &path, None, &e))?;
        file.write_all_at(0, &encode_header(generation))
            .and_then(|_| file.sync())
            .map_err(|e| DsError::io("wal header write", &path, Some(0), &e))?;
        let sync_file = file
            .duplicate()
            .map_err(|e| DsError::io("wal handle duplicate", &path, None, &e))?;
        Ok(WalWriter {
            path,
            inner: Mutex::new(WalInner {
                file,
                open_txn: None,
                next_txn: 1,
                len: WAL_HEADER_SIZE,
            }),
            sync_file,
            sync_state: Mutex::new(SyncState {
                synced: WAL_HEADER_SIZE,
                syncing: false,
            }),
            sync_cv: Condvar::new(),
            counters: WalCounters::default(),
            poisoned: AtomicBool::new(false),
            poison_reason: Mutex::new(None),
        })
    }

    fn inner(&self) -> std::sync::MutexGuard<'_, WalInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Flip the writer into the sticky read-only state. Idempotent: the
    /// first reason wins. Wakes every group-commit waiter so blocked
    /// followers fail immediately instead of hanging.
    pub fn poison(&self, reason: impl Into<String>) {
        {
            let mut r = self.poison_reason.lock().unwrap_or_else(|e| e.into_inner());
            if r.is_none() {
                *r = Some(reason.into());
                self.counters.poison_flips.bump();
            }
        }
        self.poisoned.store(true, Ordering::SeqCst);
        // Take the sync lock so waiters can't miss the wakeup between their
        // poison check and re-entering the condvar wait.
        let _st = self.sync_state.lock().unwrap_or_else(|e| e.into_inner());
        self.sync_cv.notify_all();
    }

    /// True once a storage fault has made this writer refuse writes.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Why the writer is poisoned, if it is.
    pub fn poison_reason(&self) -> Option<String> {
        if !self.is_poisoned() {
            return None;
        }
        self.poison_reason
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// `Err(DsError::ReadOnly)` when the writer is poisoned, else `Ok(())`.
    pub fn ensure_writable(&self) -> DsResult<()> {
        if self.is_poisoned() {
            let reason = self
                .poison_reason()
                .unwrap_or_else(|| "storage fault".into());
            return Err(DsError::ReadOnly(reason));
        }
        Ok(())
    }

    /// Append one framed record at `inner.len`. On failure the file is
    /// truncated back to the pre-append length so a partial (torn) frame
    /// never sits in the middle of the log — a later successful append at
    /// the same offset would otherwise leave stale garbage that stops the
    /// recovery scan early. If even the truncate fails the writer is
    /// poisoned: the tail is no longer trustworthy.
    fn append_locked(&self, inner: &mut WalInner, rec: &WalRecord) -> DsResult<()> {
        let payload = encode_record(rec);
        let mut framed = Vec::with_capacity(8 + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&crc32(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        let offset = inner.len;
        match inner.file.write_all_at(offset, &framed) {
            Ok(()) => {
                inner.len += framed.len() as u64;
                self.counters.appends.bump();
                Ok(())
            }
            Err(e) => {
                if let Err(te) = inner.file.truncate(offset) {
                    self.poison(format!(
                        "wal append failed ({e}) and tail restore failed ({te})"
                    ));
                }
                Err(DsError::io("wal append", &self.path, Some(offset), &e))
            }
        }
    }

    /// Group-commit sync: make every byte below `target` durable.
    ///
    /// If the watermark already covers `target` (a concurrent leader's fsync
    /// swept our records in), this returns without touching the disk. If a
    /// leader is mid-fsync, wait for it and re-check. Otherwise become the
    /// leader: read the current appended length (which covers any followers
    /// that appended after us), fsync once *outside* the append mutex, then
    /// publish the new watermark and wake every waiter.
    ///
    /// Lock order: `sync_state` is never held while taking `inner` during the
    /// fsync window (it is released before the length read), so appenders are
    /// never blocked by a sync in progress.
    ///
    /// Failure semantics (fsyncgate): if the leader's fsync fails, *no*
    /// commit riding that sync may be reported durable — the leader poisons
    /// the writer and every waiting follower (and any later committer)
    /// fails with [`DsError::ReadOnly`]. The fsync is never reissued: after
    /// a failed fsync the kernel may have dropped the dirty pages, so a
    /// clean retry would silently ack lost data. The `synced >= target`
    /// check deliberately precedes the poison check — a commit whose bytes
    /// were already covered by an *earlier successful* fsync stays `Ok`
    /// even if the writer was poisoned afterwards.
    fn group_sync(&self, target: u64) -> DsResult<()> {
        let mut st = self.sync_state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if st.synced >= target {
                return Ok(());
            }
            if self.is_poisoned() {
                drop(st);
                return Err(DsError::ReadOnly(
                    self.poison_reason()
                        .unwrap_or_else(|| "wal fsync failed".into()),
                ));
            }
            if st.syncing {
                st = self.sync_cv.wait(st).unwrap_or_else(|e| e.into_inner());
                continue;
            }
            st.syncing = true;
            drop(st);
            // Everything appended up to here rides this fsync — records from
            // followers that arrived after our own append are swept along.
            let high = self.inner().len;
            let res = self.sync_file.sync();
            self.counters.fsyncs.bump();
            if let Err(e) = &res {
                // Poison *before* clearing `syncing`: once followers wake
                // they must observe the sticky state, not start a new fsync.
                self.poison(format!("wal fsync failed: {e}"));
            }
            st = self.sync_state.lock().unwrap_or_else(|e| e.into_inner());
            st.syncing = false;
            if res.is_ok() {
                st.synced = st.synced.max(high);
            }
            self.sync_cv.notify_all();
            res.map_err(|e| DsError::io("wal sync", &self.path, None, &e))?;
        }
    }

    /// Commit/fsync counters since this writer was created.
    pub fn group_commit_stats(&self) -> GroupCommitStats {
        GroupCommitStats {
            commits: self.counters.commits.get(),
            fsyncs: self.counters.fsyncs.get(),
        }
    }

    /// Clonable handles to this writer's counters, for registry attachment.
    pub fn counters(&self) -> WalCounters {
        self.counters.clone()
    }

    /// Open a statement transaction; its operations are durable only after
    /// [`WalWriter::commit`]. Errors if a transaction is already open, or
    /// with [`DsError::ReadOnly`] if the writer is poisoned.
    pub fn begin(&self) -> DsResult<u64> {
        self.ensure_writable()?;
        let mut inner = self.inner();
        if inner.open_txn.is_some() {
            return Err(DsError::Storage("wal: transaction already open".into()));
        }
        let txn = inner.next_txn;
        inner.next_txn += 1;
        self.append_locked(&mut inner, &WalRecord::Begin { txn })?;
        inner.open_txn = Some(txn);
        Ok(txn)
    }

    /// Seal the open transaction: append `COMMIT`, then `fsync` via the
    /// group-commit path (one leader syncs for every committer whose records
    /// are already appended). An `Err` return means the transaction is NOT
    /// durable — in particular, a failed group fsync fails every commit
    /// batched behind it and leaves the writer read-only.
    pub fn commit(&self) -> DsResult<()> {
        let target = {
            let mut inner = self.inner();
            let txn = inner
                .open_txn
                .take()
                .ok_or_else(|| DsError::Storage("wal: commit with no open transaction".into()))?;
            self.ensure_writable()?;
            self.append_locked(&mut inner, &WalRecord::Commit { txn })?;
            inner.len
        };
        self.counters.commits.bump();
        self.group_sync(target)
    }

    /// Abandon the open transaction. Its records stay in the file but carry
    /// no `COMMIT`, so recovery discards them — redo-only rollback.
    pub fn rollback(&self) {
        self.inner().open_txn = None;
    }

    /// Log one redo operation. Inside an open transaction the record is
    /// buffered by the OS until commit; outside one it is auto-committed
    /// (`BEGIN` + op + `COMMIT` + group-synced fsync) so direct table
    /// mutations are durable on their own. Concurrent autocommitters batch
    /// their fsyncs through the group-commit leader (see the module docs).
    pub fn log(&self, op: WalOp) -> DsResult<()> {
        self.ensure_writable()?;
        let target = {
            let mut inner = self.inner();
            match inner.open_txn {
                Some(txn) => return self.append_locked(&mut inner, &WalRecord::Op { txn, op }),
                None => {
                    let txn = inner.next_txn;
                    inner.next_txn += 1;
                    self.append_locked(&mut inner, &WalRecord::Begin { txn })?;
                    self.append_locked(&mut inner, &WalRecord::Op { txn, op })?;
                    self.append_locked(&mut inner, &WalRecord::Commit { txn })?;
                    inner.len
                }
            }
        };
        self.counters.commits.bump();
        self.group_sync(target)
    }
}

/// Result of scanning a WAL file front to back.
#[derive(Debug)]
pub struct WalScan {
    /// Generation stamped in the header (matched against the page file's).
    pub generation: u64,
    /// Every intact record with the file offset just past it, in log order.
    pub records: Vec<(WalRecord, u64)>,
    /// Offset of the first torn/corrupt byte — the truncation point.
    pub valid_len: u64,
}

/// Scan a WAL file, stopping at the first torn or corrupt record.
///
/// Returns `Ok(None)` when the file is missing or its header is unreadable
/// (both mean "no log to replay" — e.g. a crash between checkpoint rename
/// and WAL reset). Corruption *after* the header only shortens the result:
/// everything before the damage is returned, everything after is dead.
pub fn scan_wal(path: impl AsRef<Path>) -> DsResult<Option<WalScan>> {
    scan_wal_with(&os_vfs(), path)
}

/// [`scan_wal`] against an explicit [`Vfs`].
pub fn scan_wal_with(vfs: &Arc<dyn Vfs>, path: impl AsRef<Path>) -> DsResult<Option<WalScan>> {
    let path = path.as_ref();
    let raw = match vfs.read(path) {
        Ok(raw) => raw,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(DsError::io("wal read", path, None, &e)),
    };
    if raw.len() < WAL_HEADER_SIZE as usize
        || raw[0..4] != WAL_MAGIC
        || crate::codec::u16_le(&raw[4..6]) != WAL_VERSION
        || crc32(&raw[0..16]) != crate::codec::u32_le(&raw[16..20])
    {
        return Ok(None);
    }
    let generation = crate::codec::u64_le(&raw[8..16]);
    let mut records = Vec::new();
    let mut off = WAL_HEADER_SIZE as usize;
    loop {
        if off + 8 > raw.len() {
            break; // torn frame header
        }
        let len = crate::codec::u32_le(&raw[off..off + 4]);
        let stored_crc = crate::codec::u32_le(&raw[off + 4..off + 8]);
        if len > MAX_RECORD || off + 8 + len as usize > raw.len() {
            break; // insane length or torn payload
        }
        let payload = &raw[off + 8..off + 8 + len as usize];
        if crc32(payload) != stored_crc {
            break; // bit rot
        }
        let rec = match decode_record(payload) {
            Ok(r) => r,
            Err(_) => break, // valid CRC but undecodable: treat as torn
        };
        off += 8 + len as usize;
        records.push((rec, off as u64));
    }
    Ok(Some(WalScan {
        generation,
        records,
        valid_len: off as u64,
    }))
}

/// The committed operations of a scan, in commit order.
pub fn committed_ops(scan: &WalScan) -> Vec<WalOp> {
    use std::collections::HashMap;
    let mut pending: HashMap<u64, Vec<WalOp>> = HashMap::new();
    let mut committed = Vec::new();
    for (rec, _) in &scan.records {
        match rec {
            WalRecord::Begin { txn } => {
                pending.insert(*txn, Vec::new());
            }
            WalRecord::Op { txn, op } => {
                pending.entry(*txn).or_default().push(op.clone());
            }
            WalRecord::Commit { txn } => {
                if let Some(ops) = pending.remove(txn) {
                    committed.extend(ops);
                }
            }
        }
    }
    committed
}

/// Replay committed *table* redo operations — DML and `CREATE`/`DROP TABLE`
/// DDL — against a catalog restored from the matching checkpoint. Engine
/// operations ([`WalOp::is_engine_op`]: sheet edits and binding
/// create/drop) are skipped — the engine replays those against its decoded
/// sheets. Returns the number of table operations applied.
///
/// Tables must *not* have a WAL attached during replay (a freshly decoded
/// snapshot does not), or the recovery would re-log itself.
pub fn apply_committed(catalog: &mut Catalog, ops: &[WalOp]) -> DsResult<usize> {
    let mut applied = 0;
    for op in ops {
        match op {
            WalOp::Insert {
                table,
                key,
                pos,
                row,
            } => {
                catalog
                    .get_mut(table)?
                    .insert_at_with_key(*pos as usize, *key, row.clone())?;
            }
            WalOp::UpdateCell {
                table,
                key,
                col,
                value,
            } => {
                catalog
                    .get_mut(table)?
                    .update_cell(*key, *col as usize, value.clone())?;
            }
            WalOp::UpdateRow { table, key, row } => {
                catalog.get_mut(table)?.update_row(*key, row.clone())?;
            }
            WalOp::Delete { table, key } => {
                catalog.get_mut(table)?.delete_row(*key)?;
            }
            WalOp::CreateTable {
                table,
                schema,
                pool_pages,
            } => {
                let t = crate::table::Table::with_pool_capacity(
                    table.clone(),
                    schema.clone(),
                    crate::catalog::DEFAULT_POLICY,
                    (*pool_pages as usize).max(1),
                );
                catalog.insert_table(t)?;
            }
            WalOp::DropTable { table } => {
                catalog.drop_table(table)?;
            }
            WalOp::SheetCell { .. }
            | WalOp::SheetGrid { .. }
            | WalOp::BindCreate { .. }
            | WalOp::BindDrop { .. } => continue,
        }
        applied += 1;
    }
    Ok(applied)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("dsp-wal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn wal_tag_registry_is_unique_and_contiguous() {
        let mut values: Vec<u8> = WAL_TAGS.iter().map(|s| s.tag).collect();
        values.sort_unstable();
        let expect: Vec<u8> = (1..=WAL_TAGS.len() as u8).collect();
        assert_eq!(
            values, expect,
            "tag bytes must be unique and contiguous from 1"
        );
        let mut names: Vec<&str> = WAL_TAGS.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), WAL_TAGS.len(), "record names must be unique");
    }

    fn op(i: i64) -> WalOp {
        WalOp::Insert {
            table: "t".into(),
            key: i as u64,
            pos: i as u64,
            row: vec![Value::Int(i), Value::text(format!("row{i}"))],
        }
    }

    #[test]
    fn records_round_trip() {
        for rec in [
            WalRecord::Begin { txn: 9 },
            WalRecord::Commit { txn: 9 },
            WalRecord::Op { txn: 9, op: op(4) },
            WalRecord::Op {
                txn: 1,
                op: WalOp::UpdateCell {
                    table: "x".into(),
                    key: 2,
                    col: 1,
                    value: Value::Empty,
                },
            },
            WalRecord::Op {
                txn: 1,
                op: WalOp::UpdateRow {
                    table: "x".into(),
                    key: 2,
                    row: vec![Value::Bool(true)],
                },
            },
            WalRecord::Op {
                txn: 1,
                op: WalOp::Delete {
                    table: "x".into(),
                    key: 2,
                },
            },
            WalRecord::Op {
                txn: 2,
                op: WalOp::SheetCell {
                    sheet: "Sheet1".into(),
                    row: 3,
                    col: 1,
                    content: SheetCellContent::Value(Value::Int(7)),
                },
            },
            WalRecord::Op {
                txn: 2,
                op: WalOp::SheetCell {
                    sheet: "Data".into(),
                    row: 0,
                    col: 0,
                    content: SheetCellContent::Formula("=SUM(A1:B2)".into()),
                },
            },
            WalRecord::Op {
                txn: 2,
                op: WalOp::SheetGrid {
                    sheet: "Sheet1".into(),
                    edit: GridEditKind::DeleteRows,
                    at: 4,
                    count: 2,
                },
            },
            WalRecord::Op {
                txn: 3,
                op: WalOp::BindCreate {
                    meta: BindingMeta {
                        id: 5,
                        sheet: "Sheet1".into(),
                        table: "t".into(),
                        row: 2,
                        col: 3,
                        model: crate::binding::BindModel::Tom,
                        cols: vec![0, 1, 2],
                    },
                },
            },
            WalRecord::Op {
                txn: 3,
                op: WalOp::BindDrop { id: 5 },
            },
            WalRecord::Op {
                txn: 4,
                op: WalOp::CreateTable {
                    table: "fresh".into(),
                    schema: Schema::new(vec![
                        crate::schema::ColumnDef::new("id", dataspread_types::DataType::Int)
                            .not_null(),
                        crate::schema::ColumnDef::new("name", dataspread_types::DataType::Text),
                    ])
                    .unwrap()
                    .with_pkey(&["id"])
                    .unwrap(),
                    pool_pages: 64,
                },
            },
            WalRecord::Op {
                txn: 4,
                op: WalOp::DropTable {
                    table: "fresh".into(),
                },
            },
        ] {
            let bytes = encode_record(&rec);
            assert_eq!(decode_record(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn scan_returns_committed_and_drops_open_txn() {
        let path = tmp("committed");
        let w = WalWriter::create(&path, 3).unwrap();
        w.begin().unwrap();
        w.log(op(1)).unwrap();
        w.log(op(2)).unwrap();
        w.commit().unwrap();
        w.begin().unwrap();
        w.log(op(3)).unwrap();
        // No commit: the process "crashes" here.
        drop(w);
        let scan = scan_wal(&path).unwrap().unwrap();
        assert_eq!(scan.generation, 3);
        let ops = committed_ops(&scan);
        assert_eq!(ops, vec![op(1), op(2)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn autocommit_outside_txn() {
        let path = tmp("autocommit");
        let w = WalWriter::create(&path, 1).unwrap();
        w.log(op(7)).unwrap();
        drop(w);
        let scan = scan_wal(&path).unwrap().unwrap();
        assert_eq!(committed_ops(&scan), vec![op(7)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_truncates_at_last_valid_record() {
        let path = tmp("torn");
        let w = WalWriter::create(&path, 1).unwrap();
        w.begin().unwrap();
        w.log(op(1)).unwrap();
        w.commit().unwrap();
        w.begin().unwrap();
        w.log(op(2)).unwrap();
        w.commit().unwrap();
        drop(w);
        let full = std::fs::read(&path).unwrap();
        // Chop mid-record: everything from the cut on is dead.
        for cut in (WAL_HEADER_SIZE as usize)..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let scan = scan_wal(&path).unwrap().unwrap();
            assert!(scan.valid_len <= cut as u64);
            let ops = committed_ops(&scan);
            assert!(ops.len() <= 2);
            // Prefix property: surviving ops are exactly the first k.
            for (i, o) in ops.iter().enumerate() {
                assert_eq!(*o, op(i as i64 + 1));
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rollback_discards_records() {
        let path = tmp("rollback");
        let w = WalWriter::create(&path, 1).unwrap();
        w.begin().unwrap();
        w.log(op(1)).unwrap();
        w.rollback();
        w.begin().unwrap();
        w.log(op(2)).unwrap();
        w.commit().unwrap();
        drop(w);
        let scan = scan_wal(&path).unwrap().unwrap();
        assert_eq!(committed_ops(&scan), vec![op(2)]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn single_threaded_commit_is_one_fsync_each() {
        let path = tmp("gc-single");
        let w = WalWriter::create(&path, 1).unwrap();
        for i in 0..5 {
            w.log(op(i)).unwrap();
        }
        let s = w.group_commit_stats();
        assert_eq!(s.commits, 5);
        assert_eq!(s.fsyncs, 5, "uncontended autocommit pays its own fsync");
        drop(w);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_sync_below_watermark_skips_fsync() {
        let path = tmp("gc-watermark");
        let w = WalWriter::create(&path, 1).unwrap();
        w.log(op(1)).unwrap();
        let before = w.group_commit_stats().fsyncs;
        // Already durable: a sync request at or below the watermark is free.
        let target = w.inner().len;
        w.group_sync(target).unwrap();
        w.group_sync(WAL_HEADER_SIZE).unwrap();
        assert_eq!(w.group_commit_stats().fsyncs, before);
        drop(w);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn concurrent_autocommits_all_durable_and_batched() {
        use std::sync::Arc;
        let path = tmp("gc-threads");
        let w = Arc::new(WalWriter::create(&path, 1).unwrap());
        const THREADS: u64 = 8;
        const OPS: u64 = 25;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let w = Arc::clone(&w);
                std::thread::spawn(move || {
                    for i in 0..OPS {
                        w.log(op((t * OPS + i) as i64)).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = w.group_commit_stats();
        assert_eq!(s.commits, THREADS * OPS);
        assert!(s.fsyncs >= 1 && s.fsyncs <= s.commits);
        drop(w);
        let scan = scan_wal(&path).unwrap().unwrap();
        let mut keys: Vec<u64> = committed_ops(&scan)
            .iter()
            .map(|o| match o {
                WalOp::Insert { key, .. } => *key,
                other => panic!("unexpected op {other:?}"),
            })
            .collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..THREADS * OPS).collect::<Vec<_>>());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn invalid_header_reads_as_no_log() {
        let path = tmp("badheader");
        std::fs::write(&path, b"not a wal file").unwrap();
        assert!(scan_wal(&path).unwrap().is_none());
        assert!(scan_wal(tmp("missing")).unwrap().is_none());
        std::fs::remove_file(&path).unwrap();
    }
}
