//! Crash-injection property suite: recovery restores exactly the last
//! committed state.
//!
//! Each case builds a random transaction history over a checkpointed
//! catalog, recording a reference fingerprint after every commit, then
//! injects crash-shaped damage into the store files:
//!
//! * **Torn WAL tail** — the file is truncated at an arbitrary byte offset
//!   (a crash mid-append). Recovery must equal the reference state after
//!   the last `COMMIT` record that wholly survived the cut.
//! * **Flipped WAL byte** — a random bit flip anywhere after the header.
//!   The CRC framing must stop replay at the damaged record, recovering the
//!   commit prefix before it (a redo log cannot skip holes).
//! * **Flipped page-file byte** — recovery must either detect the damage
//!   (checksum error) or be provably unaffected (the flip landed in a frame
//!   hole or a scratch write-back region, neither of which recovery reads);
//!   it must never decode garbage state.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use dataspread_posindex::RowKey;
use dataspread_relstore::snapshot::{load_catalog, save_catalog, DATA_FILE, WAL_FILE};
use dataspread_relstore::wal::{scan_wal, WalRecord, WAL_HEADER_SIZE};
use dataspread_relstore::{Catalog, ColumnDef, Schema, StoreHandle};
use dataspread_testkit::{cases, Rng};
use dataspread_types::{DataType, Value};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn fresh_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let p = std::env::temp_dir().join(format!("dsp-crash-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Full logical state of the table: keys and rows in presentation order.
type Fingerprint = Vec<(RowKey, Vec<Value>)>;

fn fingerprint(catalog: &Catalog) -> Fingerprint {
    catalog.get("t").unwrap().scan().unwrap()
}

fn random_value(rng: &mut Rng) -> Value {
    match rng.weighted(&[3, 2, 1]) {
        0 => Value::Int(rng.i64() % 1000),
        1 => Value::text(rng.lowercase(0, 12)),
        _ => Value::Empty,
    }
}

/// Apply one random mutation through the normal table API (each is one WAL
/// redo record). Inserts dominate so the table grows.
fn random_op(rng: &mut Rng, catalog: &mut Catalog) {
    let mut t = catalog.get_mut("t").unwrap();
    let n = t.row_count();
    match rng.weighted(&[4, 2, 2, 1]) {
        0 => {
            let pos = rng.index(n + 1);
            t.insert_at(pos, vec![Value::Int(rng.i64() % 100), random_value(rng)])
                .unwrap();
        }
        1 if n > 0 => {
            let key = t.key_at(rng.index(n)).unwrap();
            // Column 0 is INT; column 1 (Any) takes any value.
            if rng.bool() {
                t.update_cell(key, 0, Value::Int(rng.i64() % 500)).unwrap();
            } else {
                t.update_cell(key, 1, random_value(rng)).unwrap();
            }
        }
        2 if n > 0 => {
            let key = t.key_at(rng.index(n)).unwrap();
            t.update_row(key, vec![Value::Int(rng.i64() % 500), random_value(rng)])
                .unwrap();
        }
        3 if n > 0 => {
            let key = t.key_at(rng.index(n)).unwrap();
            t.delete_row(key).unwrap();
        }
        _ => {
            t.insert(vec![Value::Int(7), Value::text("fallback")])
                .unwrap();
        }
    }
}

/// Build a store: checkpoint a seeded table, then run `txns` random
/// transactions (1–3 ops each) through the WAL. Returns the reference
/// fingerprints after each commit (index 0 = checkpoint state) and the
/// store handle.
fn build_history(
    rng: &mut Rng,
    dir: &std::path::Path,
    txns: usize,
) -> (Vec<Fingerprint>, StoreHandle, Catalog) {
    let mut catalog = Catalog::new();
    let schema = Schema::new(vec![
        ColumnDef::new("a", DataType::Int),
        ColumnDef::new("b", DataType::Any),
    ])
    .unwrap();
    catalog.create_table("t", schema).unwrap();
    for i in 0..rng.index(8) {
        catalog
            .get_mut("t")
            .unwrap()
            .insert(vec![Value::Int(i as i64), Value::text("seed")])
            .unwrap();
    }
    let handle = save_catalog(dir, &catalog, b"", 1).unwrap();
    handle.attach_all(&catalog);
    let mut states = vec![fingerprint(&catalog)];
    for _ in 0..txns {
        handle.wal.begin().unwrap();
        for _ in 0..rng.usize_in(1, 4) {
            random_op(rng, &mut catalog);
        }
        handle.wal.commit().unwrap();
        states.push(fingerprint(&catalog));
    }
    (states, handle, catalog)
}

/// Offsets just past each COMMIT record in the full WAL.
fn commit_ends(wal_path: &std::path::Path) -> Vec<u64> {
    let scan = scan_wal(wal_path).unwrap().unwrap();
    scan.records
        .iter()
        .filter(|(rec, _)| matches!(rec, WalRecord::Commit { .. }))
        .map(|(_, end)| *end)
        .collect()
}

#[test]
fn torn_wal_tail_recovers_exact_commit_prefix() {
    cases(10, 0x00C4_A511, |rng| {
        let dir = fresh_dir("torn");
        let txns = rng.usize_in(2, 7);
        let (states, handle, catalog) = build_history(rng, &dir, txns);
        drop((handle, catalog)); // crash
        let wal_path = dir.join(WAL_FILE);
        let full = std::fs::read(&wal_path).unwrap();
        let ends = commit_ends(&wal_path);
        assert_eq!(ends.len(), txns);

        for _ in 0..8 {
            let cut = rng.usize_in(WAL_HEADER_SIZE as usize, full.len() + 1);
            std::fs::write(&wal_path, &full[..cut]).unwrap();
            let loaded = load_catalog(&dir).unwrap();
            let expected = ends.iter().filter(|&&e| e <= cut as u64).count();
            assert_eq!(
                fingerprint(&loaded.catalog),
                states[expected],
                "cut at {cut} of {} must recover state {expected}",
                full.len()
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    });
}

#[test]
fn corrupted_wal_byte_recovers_commit_prefix_before_damage() {
    cases(10, 0x00BA_DB17, |rng| {
        let dir = fresh_dir("flip");
        let txns = rng.usize_in(2, 6);
        let (states, handle, catalog) = build_history(rng, &dir, txns);
        drop((handle, catalog));
        let wal_path = dir.join(WAL_FILE);
        let full = std::fs::read(&wal_path).unwrap();
        let ends = commit_ends(&wal_path);

        for _ in 0..8 {
            let off = rng.usize_in(WAL_HEADER_SIZE as usize, full.len());
            let bit = 1u8 << rng.index(8);
            let mut damaged = full.clone();
            damaged[off] ^= bit;
            std::fs::write(&wal_path, &damaged).unwrap();
            let loaded = load_catalog(&dir).unwrap();
            // CRC framing truncates at the record containing the flip:
            // exactly the commits wholly before the damage survive.
            let expected = ends.iter().filter(|&&e| e <= off as u64).count();
            assert_eq!(
                fingerprint(&loaded.catalog),
                states[expected],
                "flip at {off} must recover state {expected}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    });
}

#[test]
fn corrupted_wal_header_recovers_checkpoint() {
    let mut rng = Rng::new(0x000E_ADE4);
    let dir = fresh_dir("header");
    let (states, handle, catalog) = build_history(&mut rng, &dir, 3);
    drop((handle, catalog));
    let wal_path = dir.join(WAL_FILE);
    let mut raw = std::fs::read(&wal_path).unwrap();
    raw[9] ^= 0xFF; // inside the generation field: header CRC now fails
    std::fs::write(&wal_path, &raw).unwrap();
    let loaded = load_catalog(&dir).unwrap();
    assert_eq!(loaded.replayed, 0, "unreadable header means no replay");
    assert_eq!(fingerprint(&loaded.catalog), states[0]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_page_file_detected_or_provably_unaffected() {
    cases(8, 0x0FAC_E0FF, |rng| {
        let dir = fresh_dir("pagefile");
        let txns = rng.usize_in(1, 4);
        let (states, handle, catalog) = build_history(rng, &dir, txns);
        drop((handle, catalog));
        let data_path = dir.join(DATA_FILE);
        let full = std::fs::read(&data_path).unwrap();

        for _ in 0..8 {
            let off = rng.index(full.len());
            let bit = 1u8 << rng.index(8);
            let mut damaged = full.clone();
            damaged[off] ^= bit;
            std::fs::write(&data_path, &damaged).unwrap();
            match load_catalog(&dir) {
                // Detected: header or frame checksum caught the flip.
                Err(_) => {}
                // Unaffected: the flip landed in bytes recovery never
                // reads (frame holes, scratch write-backs). The recovered
                // state must still be exactly the last committed one.
                Ok(loaded) => {
                    assert_eq!(
                        fingerprint(&loaded.catalog),
                        states[txns],
                        "flip at {off}: undetected damage must be harmless"
                    );
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    });
}
