//! Fault-injection suite for the storage layer, driven by [`FaultVfs`].
//!
//! Covers the failure semantics the engine promises:
//!
//! * **fsyncgate** — a failed WAL fsync fails *every* commit riding that
//!   sync, poisons the writer (sticky read-only), and the fsync is never
//!   reissued. Recovery yields exactly the acked prefix.
//! * **ENOSPC / short writes** — a torn append is truncated away; the
//!   failed op is simply absent, the log stays scannable, and later
//!   appends succeed. The sync watermark never advances over torn bytes.
//! * **Checkpoint failures** — pre-rename failures roll back cleanly
//!   (old pair intact, retryable); post-rename failures poison the old
//!   WAL so no commit is acked into a log recovery would discard.
//! * **Stale `data.dsp.tmp`** — a crash between tmp write and rename
//!   leaves debris that open must ignore and clean up, still replaying
//!   the old-generation WAL.
//!
//! Seeded property cases print their seed; replay one with
//! `DSP_FAULT_SEED=<seed> cargo test -p dataspread_relstore --test
//! fault_injection`.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use dataspread_relstore::snapshot::{load_catalog_with, save_catalog_with, DATA_FILE, WAL_FILE};
use dataspread_relstore::vfs::{FaultKind, FaultPlan, FaultVfs, RecoveryImage, Vfs};
use dataspread_relstore::wal::{committed_ops, scan_wal_with, WalOp, WalWriter};
use dataspread_relstore::{Catalog, ColumnDef, Schema};
use dataspread_testkit::cases;
use dataspread_types::{DataType, DsError, Value};

/// Base seed for the property cases; override with `DSP_FAULT_SEED` to
/// replay a failing schedule.
fn fault_seed() -> u64 {
    match std::env::var("DSP_FAULT_SEED") {
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x") {
                u64::from_str_radix(hex, 16)
            } else {
                s.parse()
            };
            parsed.unwrap_or_else(|_| panic!("DSP_FAULT_SEED must be an integer, got {s:?}"))
        }
        Err(_) => 0xDA7A_5EED_u64,
    }
}

fn op(i: i64) -> WalOp {
    WalOp::Insert {
        table: "t".into(),
        key: i as u64,
        pos: i as u64,
        row: vec![Value::Int(i), Value::text(format!("row{i}"))],
    }
}

/// A fault vfs (quiet plan) plus its `Arc<dyn Vfs>` view.
fn quiet_fault() -> (FaultVfs, Arc<dyn Vfs>) {
    let fault = FaultVfs::new(FaultPlan::quiet());
    let vfs: Arc<dyn Vfs> = Arc::new(fault.clone());
    (fault, vfs)
}

fn committed_at(fault: &FaultVfs, vfs: &Arc<dyn Vfs>, path: &Path) -> Vec<WalOp> {
    fault.reset_to_recovery(RecoveryImage::Synced);
    let scan = scan_wal_with(vfs, path)
        .expect("recovered wal must scan")
        .expect("wal header was synced at create, so it must survive");
    committed_ops(&scan)
}

// ------------------------------------------------------------- fsyncgate

/// A failed fsync fails the commit that needed it, poisons the writer,
/// never retries the fsync, and recovery yields exactly the acked ops.
#[test]
fn fsync_failure_poisons_writer_and_keeps_acked_prefix() {
    let (fault, vfs) = quiet_fault();
    let wal_path = PathBuf::from("/store/wal.dsp");
    vfs.create_dir_all(Path::new("/store")).unwrap();
    let w = WalWriter::create_with(&vfs, &wal_path, 1).unwrap();

    w.log(op(1)).unwrap();

    // Fail the next fsync (0-based global index = syncs observed so far).
    let syncs = fault.stats().syncs;
    fault.set_plan(FaultPlan {
        fail_nth_sync: Some(syncs),
        ..FaultPlan::quiet()
    });

    let err = w.log(op(2)).unwrap_err();
    assert!(
        matches!(err, DsError::Io(ref ctx) if ctx.op == "wal sync"),
        "leader sees the raw sync failure, got {err:?}"
    );
    assert!(w.is_poisoned());
    let reason = w.poison_reason().expect("poisoned writer carries a reason");
    assert!(
        reason.contains("fsync"),
        "reason should name the fsync: {reason}"
    );

    // Sticky: later commits fail typed, without ever touching the disk
    // again (the failed fsync is never reissued).
    let fsyncs_after_failure = w.group_commit_stats().fsyncs;
    let err = w.log(op(3)).unwrap_err();
    assert!(
        err.is_read_only(),
        "post-poison commits are ReadOnly: {err:?}"
    );
    assert!(w.begin().unwrap_err().is_read_only());
    assert_eq!(
        w.group_commit_stats().fsyncs,
        fsyncs_after_failure,
        "no fsync may be issued after poison"
    );

    // Power-cut recovery: exactly the acked op survives; the un-acked
    // records (appended but never synced) are gone.
    drop(w);
    assert_eq!(committed_at(&fault, &vfs, &wal_path), vec![op(1)]);
}

/// Concurrent committers racing a mid-stream fsync failure: every op acked
/// `Ok` survives recovery; errors are the raw Io failure or ReadOnly.
#[test]
fn concurrent_commits_never_lose_an_acked_op_across_fsync_failure() {
    const THREADS: i64 = 4;
    const OPS: i64 = 30;
    let (fault, vfs) = quiet_fault();
    let wal_path = PathBuf::from("/store/wal.dsp");
    vfs.create_dir_all(Path::new("/store")).unwrap();
    let w = Arc::new(WalWriter::create_with(&vfs, &wal_path, 1).unwrap());

    // Fail one fsync somewhere in the middle of the run.
    fault.set_plan(FaultPlan {
        fail_nth_sync: Some(fault.stats().syncs + 9),
        ..FaultPlan::quiet()
    });

    let acked: Vec<i64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let w = Arc::clone(&w);
                s.spawn(move || {
                    let mut acked = Vec::new();
                    for i in 0..OPS {
                        let id = t * 1_000 + i;
                        match w.log(op(id)) {
                            Ok(()) => acked.push(id),
                            Err(e) => {
                                assert!(
                                    e.is_read_only() || matches!(e, DsError::Io(_)),
                                    "unexpected error shape: {e:?}"
                                );
                                break;
                            }
                        }
                    }
                    acked
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    assert!(
        w.is_poisoned(),
        "the scheduled fsync failure must have fired"
    );
    drop(w);
    let recovered: Vec<i64> = committed_at(&fault, &vfs, &wal_path)
        .into_iter()
        .map(|o| match o {
            WalOp::Insert { key, .. } => key as i64,
            other => panic!("unexpected op {other:?}"),
        })
        .collect();
    for id in &acked {
        assert!(
            recovered.contains(id),
            "op {id} was acked Ok but lost in recovery (acked {acked:?}, recovered {recovered:?})"
        );
    }
}

// ------------------------------------------------------- ENOSPC / torn tail

/// A short (torn) append is repaired by truncation: the failed op is
/// absent, the writer stays healthy, and the log keeps accepting appends.
#[test]
fn short_write_is_truncated_away_and_log_stays_usable() {
    let (fault, vfs) = quiet_fault();
    let wal_path = PathBuf::from("/store/wal.dsp");
    vfs.create_dir_all(Path::new("/store")).unwrap();
    let w = WalWriter::create_with(&vfs, &wal_path, 1).unwrap();

    w.log(op(1)).unwrap();
    let fsyncs_before = w.group_commit_stats().fsyncs;

    // Tear the next write (ENOSPC mid-buffer).
    fault.set_plan(FaultPlan {
        fail_nth_write: Some((fault.stats().writes, FaultKind::ShortWrite)),
        ..FaultPlan::quiet()
    });
    let err = w.log(op(2)).unwrap_err();
    match &err {
        DsError::Io(ctx) => {
            assert_eq!(ctx.op, "wal append");
            assert_eq!(
                ctx.kind,
                std::io::ErrorKind::WriteZero,
                "ENOSPC shape: {ctx}"
            );
        }
        other => panic!("expected Io, got {other:?}"),
    }
    assert!(!w.is_poisoned(), "a repaired torn append is not sticky");
    assert_eq!(
        w.group_commit_stats().fsyncs,
        fsyncs_before,
        "the sync watermark must not advance over a torn append"
    );

    // The log is still usable, and the torn frame never surfaces.
    fault.set_plan(FaultPlan::quiet());
    w.log(op(3)).unwrap();
    drop(w);
    assert_eq!(committed_at(&fault, &vfs, &wal_path), vec![op(1), op(3)]);
}

// -------------------------------------------------- seeded crash property

/// Property: under a randomized mix of fsync failures and crashes, the
/// recovered log is exactly the set of acked ops, in order. (Write-level
/// faults are exercised deterministically above; they report failure to
/// the caller without poisoning, so "acked" remains the only contract.)
#[test]
fn seeded_fault_schedules_recover_exactly_the_acked_ops() {
    let base = fault_seed();
    eprintln!("fault_injection property base seed: {base:#x} (override with DSP_FAULT_SEED)");
    cases(48, base, |rng| {
        let plan = FaultPlan {
            seed: rng.next_u64(),
            p_sync_err: rng.u32_in(50, 400),
            p_crash: rng.u32_in(20, 200),
            ..FaultPlan::default()
        };
        let fault = FaultVfs::new(FaultPlan::quiet());
        let vfs: Arc<dyn Vfs> = Arc::new(fault.clone());
        let wal_path = PathBuf::from("/store/wal.dsp");
        vfs.create_dir_all(Path::new("/store")).unwrap();
        let w = WalWriter::create_with(&vfs, &wal_path, 1).unwrap();
        fault.set_plan(plan);

        let mut acked = Vec::new();
        for i in 0..200 {
            match w.log(op(i)) {
                Ok(()) => acked.push(op(i)),
                Err(_) => break, // sync faults poison, crashes halt — stop either way
            }
        }
        drop(w);

        fault.reset_to_recovery(RecoveryImage::Synced);
        let scan = scan_wal_with(&vfs, &wal_path)
            .expect("recovered wal must scan")
            .expect("header was synced by create");
        assert_eq!(
            committed_ops(&scan),
            acked,
            "recovery must yield exactly the acked ops (plan {plan:?})"
        );
    });
}

// --------------------------------------------------- checkpoint failures

fn small_catalog(rows: i64) -> Catalog {
    let mut catalog = Catalog::new();
    let schema = Schema::new(vec![
        ColumnDef::new("a", DataType::Int),
        ColumnDef::new("b", DataType::Any),
    ])
    .unwrap();
    catalog.create_table("t", schema).unwrap();
    for i in 0..rows {
        catalog
            .get_mut("t")
            .unwrap()
            .insert(vec![Value::Int(i), Value::text("seed")])
            .unwrap();
    }
    catalog
}

/// A checkpoint that fails before the rename rolls back cleanly: no tmp
/// debris, the old pair loads intact, and a plain retry succeeds.
#[test]
fn checkpoint_failure_before_rename_rolls_back_and_retries() {
    let (fault, vfs) = quiet_fault();
    let dir = PathBuf::from("/store");
    let catalog = small_catalog(5);
    save_catalog_with(&vfs, &dir, &catalog, b"meta", 1, None).unwrap();

    // Every write fails: the tmp snapshot cannot be written.
    fault.set_plan(FaultPlan {
        p_write_err: 10_000,
        ..FaultPlan::quiet()
    });
    let err = save_catalog_with(&vfs, &dir, &catalog, b"meta", 2, None).unwrap_err();
    assert!(
        matches!(err, DsError::Io(_)),
        "raw failure surfaces: {err:?}"
    );
    assert!(
        !vfs.exists(&dir.join(format!("{DATA_FILE}.tmp"))),
        "a failed checkpoint must not leave tmp debris"
    );

    // Old pair untouched and loadable; the fault was transient, so a
    // retry against the same directory succeeds.
    fault.quiesce();
    let loaded = load_catalog_with(&vfs, &dir).unwrap();
    assert_eq!(loaded.generation, 1);
    assert_eq!(loaded.catalog.get("t").unwrap().row_count(), 5);

    save_catalog_with(&vfs, &dir, &catalog, b"meta", 2, None).unwrap();
    assert_eq!(load_catalog_with(&vfs, &dir).unwrap().generation, 2);
}

/// A checkpoint that fails *after* the rename poisons the previous WAL:
/// the new snapshot is already in place, so recovery would discard the
/// old log — acking further commits into it would lose them.
#[test]
fn checkpoint_failure_after_rename_poisons_previous_wal() {
    let (fault, vfs) = quiet_fault();
    let dir = PathBuf::from("/store");
    let catalog = small_catalog(3);
    let handle = save_catalog_with(&vfs, &dir, &catalog, b"", 1, None).unwrap();
    handle.wal.log(op(100)).unwrap();

    // The checkpoint issues two syncs: the tmp pager sync (pre-rename),
    // then the fresh WAL header sync (post-rename). Fail the second.
    fault.set_plan(FaultPlan {
        fail_nth_sync: Some(fault.stats().syncs + 1),
        ..FaultPlan::quiet()
    });
    let err = save_catalog_with(&vfs, &dir, &catalog, b"", 2, Some(&handle.wal)).unwrap_err();
    assert!(matches!(err, DsError::Io(_)), "got {err:?}");

    assert!(
        handle.wal.is_poisoned(),
        "old WAL must refuse further commits"
    );
    let reason = handle.wal.poison_reason().unwrap();
    assert!(
        reason.contains("renamed"),
        "reason names the hazard: {reason}"
    );
    assert!(handle.wal.log(op(101)).unwrap_err().is_read_only());

    // The store itself is not corrupt: the renamed generation-2 snapshot
    // loads, and the stale generation-1 log is discarded, not replayed.
    fault.quiesce();
    let loaded = load_catalog_with(&vfs, &dir).unwrap();
    assert_eq!(loaded.generation, 2);
    assert_eq!(loaded.replayed, 0);
    assert_eq!(loaded.catalog.get("t").unwrap().row_count(), 3);
}

// ------------------------------------------------------------- stale tmp

/// A crash between writing `data.dsp.tmp` and the rename leaves stale
/// debris. Open must ignore and remove it, and still replay the WAL tail
/// that belongs to the *old* snapshot.
#[test]
fn stale_snapshot_tmp_is_cleaned_and_old_wal_still_replays() {
    let (fault, vfs) = quiet_fault();
    let dir = PathBuf::from("/store");
    let catalog = small_catalog(2);
    let handle = save_catalog_with(&vfs, &dir, &catalog, b"", 1, None).unwrap();
    handle.attach_all(&catalog);
    catalog
        .get_mut("t")
        .unwrap()
        .insert(vec![Value::Int(99), Value::text("tail")])
        .unwrap();

    // Fake the debris of a checkpoint that died pre-rename.
    let tmp_path = dir.join(format!("{DATA_FILE}.tmp"));
    let tmp = vfs.create(&tmp_path).unwrap();
    tmp.write_all_at(0, b"half-written snapshot garbage")
        .unwrap();
    tmp.sync().unwrap();
    drop(tmp);
    drop(handle);

    fault.reset_to_recovery(RecoveryImage::Synced);
    let loaded = load_catalog_with(&vfs, &dir).unwrap();
    assert_eq!(
        loaded.generation, 1,
        "the tmp file must not be mistaken for a snapshot"
    );
    assert_eq!(
        loaded.replayed, 1,
        "the WAL tail belongs to generation 1 and replays"
    );
    assert_eq!(loaded.catalog.get("t").unwrap().row_count(), 3);
    assert!(!vfs.exists(&tmp_path), "open cleans up the stale tmp file");
    assert!(vfs.exists(&dir.join(WAL_FILE)));
}
