//! Model-based property tests for the attribute-group table: every grouping
//! policy must expose identical logical behaviour (rows, order, schema)
//! under random interleavings of DML and DDL.
//!
//! Driven by `dataspread_testkit` (deterministic seeds) instead of an
//! external property-testing crate — see substitution #4 in `DESIGN.md`.

use dataspread_relstore::{ColumnDef, GroupPolicy, Schema, Table};
use dataspread_testkit::{cases, Rng};
use dataspread_types::{DataType, Value};

#[derive(Clone, Debug)]
enum Op {
    Insert(i64, String),
    InsertAt(usize, i64, String),
    UpdateCell(usize, usize, i64),
    DeleteAt(usize),
    AddColumn(String),
    DropLastAdded,
    RenameColumn(String),
}

fn arb_ops(rng: &mut Rng) -> Vec<Op> {
    let len = rng.index(60);
    (0..len)
        .map(|_| match rng.weighted(&[4, 2, 3, 2, 1, 1, 1]) {
            0 => Op::Insert(rng.i64(), rng.lowercase(0, 6)),
            1 => Op::InsertAt(rng.next_u64() as usize, rng.i64(), rng.lowercase(0, 6)),
            2 => Op::UpdateCell(rng.next_u64() as usize, rng.next_u64() as usize, rng.i64()),
            3 => Op::DeleteAt(rng.next_u64() as usize),
            4 => Op::AddColumn(rng.lowercase(1, 5)),
            5 => Op::DropLastAdded,
            _ => Op::RenameColumn(rng.lowercase(1, 5)),
        })
        .collect()
}

/// Plain in-memory model: a vec of rows plus column names.
struct Model {
    cols: Vec<String>,
    rows: Vec<Vec<Value>>,
}

fn base_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("a", DataType::Int),
        ColumnDef::new("b", DataType::Text),
    ])
    .unwrap()
}

fn run(ops: &[Op], policy: GroupPolicy) {
    let mut t = Table::new("t", base_schema(), policy);
    let mut m = Model {
        cols: vec!["a".into(), "b".into()],
        rows: Vec::new(),
    };
    let mut added: Vec<String> = Vec::new();
    let mut name_seq = 0usize;

    for op in ops {
        match op {
            Op::Insert(v, s) => {
                let mut row = vec![Value::Int(*v), Value::text(s.clone())];
                row.extend(vec![Value::Empty; m.cols.len() - 2]);
                t.insert(row.clone()).unwrap();
                m.rows.push(row);
            }
            Op::InsertAt(p, v, s) => {
                let p = if m.rows.is_empty() {
                    0
                } else {
                    p % (m.rows.len() + 1)
                };
                let mut row = vec![Value::Int(*v), Value::text(s.clone())];
                row.extend(vec![Value::Empty; m.cols.len() - 2]);
                t.insert_at(p, row.clone()).unwrap();
                m.rows.insert(p, row);
            }
            Op::UpdateCell(r, c, v) => {
                if !m.rows.is_empty() {
                    let r = r % m.rows.len();
                    let c = c % m.cols.len();
                    let val = if c == 1 {
                        Value::text(v.to_string())
                    } else {
                        Value::Int(*v)
                    };
                    let key = t.key_at(r).unwrap();
                    t.update_cell(key, c, val.clone()).unwrap();
                    // Model applies the same storage coercion (Int column 0,
                    // Text column 1, Int added columns).
                    m.rows[r][c] = val;
                }
            }
            Op::DeleteAt(p) => {
                if !m.rows.is_empty() {
                    let p = p % m.rows.len();
                    let key = t.key_at(p).unwrap();
                    t.delete_row(key).unwrap();
                    m.rows.remove(p);
                }
            }
            Op::AddColumn(base) => {
                name_seq += 1;
                let name = format!("{base}{name_seq}");
                t.add_column(ColumnDef::new(name.clone(), DataType::Int), Value::Int(0))
                    .unwrap();
                m.cols.push(name.clone());
                for row in &mut m.rows {
                    row.push(Value::Int(0));
                }
                added.push(name);
            }
            Op::DropLastAdded => {
                if let Some(name) = added.pop() {
                    let idx = m.cols.iter().position(|c| c == &name).unwrap();
                    t.drop_column(&name).unwrap();
                    m.cols.remove(idx);
                    for row in &mut m.rows {
                        row.remove(idx);
                    }
                }
            }
            Op::RenameColumn(base) => {
                if let Some(old) = added.last().cloned() {
                    name_seq += 1;
                    let new = format!("{base}{name_seq}");
                    t.rename_column(&old, &new).unwrap();
                    let idx = m.cols.iter().position(|c| c == &old).unwrap();
                    m.cols[idx] = new.clone();
                    *added.last_mut().unwrap() = new;
                }
            }
        }
        assert_eq!(t.row_count(), m.rows.len(), "row count after {op:?}");
        assert_eq!(t.schema().width(), m.cols.len(), "width after {op:?}");
    }

    // Full equivalence sweep.
    for (i, expect) in m.rows.iter().enumerate() {
        let key = t.key_at(i).unwrap();
        let got = t.get_row(key).unwrap();
        assert_eq!(&got, expect, "row {i}");
        assert_eq!(t.position_of(key), Some(i));
    }
    for (i, name) in m.cols.iter().enumerate() {
        assert_eq!(t.schema().index_of(name), Some(i), "column {name}");
    }
    // Windowed scan agrees with the model window.
    let mid = m.rows.len() / 2;
    let win = t.scan_window(mid, 5).unwrap();
    for (j, (_, row)) in win.iter().enumerate() {
        assert_eq!(row, &m.rows[mid + j]);
    }
}

#[test]
fn rowstore_matches_model() {
    cases(32, 0x2e101, |rng| {
        let ops = arb_ops(rng);
        run(&ops, GroupPolicy::RowStore);
    });
}

#[test]
fn colstore_matches_model() {
    cases(32, 0x2e102, |rng| {
        let ops = arb_ops(rng);
        run(&ops, GroupPolicy::ColumnStore);
    });
}

#[test]
fn hybrid2_matches_model() {
    cases(32, 0x2e103, |rng| {
        let ops = arb_ops(rng);
        run(&ops, GroupPolicy::Hybrid { max_group_width: 2 });
    });
}

#[test]
fn hybrid4_matches_model() {
    cases(32, 0x2e104, |rng| {
        let ops = arb_ops(rng);
        run(&ops, GroupPolicy::Hybrid { max_group_width: 4 });
    });
}
