//! Property test for the optimizer statistics: under random interleavings
//! of INSERT/DELETE/UPDATE the inline-maintained sketches must stay
//! *conservative* (NDV and bounds never undercount the live data; deletes
//! only leave them stale-high/wide), and `analyze()` must snap every
//! counter back to exact.
//!
//! Value domains are kept small (< the KMV sketch capacity) so "exact
//! after analyze" is a hard equality, not an approximation.

use std::collections::HashSet;

use dataspread_relstore::{ColumnDef, GroupPolicy, RowKey, Schema, Table};
use dataspread_testkit::{cases, Rng};
use dataspread_types::{DataType, Value};

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("a", DataType::Int),
        ColumnDef::new("b", DataType::Text),
    ])
    .unwrap()
}

fn arb_int(rng: &mut Rng) -> Value {
    if rng.below(8) == 0 {
        Value::Empty
    } else {
        Value::Int(rng.below(50) as i64 - 25)
    }
}

fn arb_text(rng: &mut Rng) -> Value {
    if rng.below(8) == 0 {
        Value::Empty
    } else {
        Value::text(rng.lowercase(1, 3))
    }
}

/// Exact per-column facts computed from the model rows.
struct Exact {
    ndv: usize,
    nulls: u64,
    min: Option<i64>,
    max: Option<i64>,
}

fn exact(rows: &[(RowKey, Vec<Value>)], col: usize) -> Exact {
    let mut distinct: HashSet<String> = HashSet::new();
    let mut nulls = 0u64;
    let mut min = None;
    let mut max = None;
    for (_, row) in rows {
        match &row[col] {
            Value::Empty => nulls += 1,
            v => {
                distinct.insert(format!("{v:?}"));
                if let Value::Int(i) = v {
                    min = Some(min.map_or(*i, |m: i64| m.min(*i)));
                    max = Some(max.map_or(*i, |m: i64| m.max(*i)));
                }
            }
        }
    }
    Exact {
        ndv: distinct.len(),
        nulls,
        min,
        max,
    }
}

/// The inline sketches never undercount the live table: NDV, null count,
/// and numeric bounds are all conservative upper envelopes.
fn check_conservative(t: &Table, rows: &[(RowKey, Vec<Value>)], ctx: &str) {
    for col in 0..2 {
        let sketch = t.statistics().column(col).unwrap();
        let e = exact(rows, col);
        assert!(
            sketch.ndv() + 1e-9 >= e.ndv as f64,
            "{ctx}: col {col} sketch ndv {} < live ndv {}",
            sketch.ndv(),
            e.ndv
        );
        assert!(
            sketch.null_count() >= e.nulls,
            "{ctx}: col {col} sketch nulls {} < live nulls {}",
            sketch.null_count(),
            e.nulls
        );
        if let (Some(lo), Some(hi)) = (e.min, e.max) {
            let smin = sketch.num_min().unwrap_or(f64::INFINITY);
            let smax = sketch.num_max().unwrap_or(f64::NEG_INFINITY);
            assert!(
                smin <= lo as f64 && smax >= hi as f64,
                "{ctx}: col {col} sketch range [{smin}, {smax}] excludes live [{lo}, {hi}]"
            );
        }
    }
}

/// After `analyze()` every statistic equals the exact value (the domains
/// are far below the KMV capacity, so NDV is exact too).
fn check_exact(t: &Table, rows: &[(RowKey, Vec<Value>)], ctx: &str) {
    assert_eq!(t.row_count(), rows.len(), "{ctx}: rows");
    for col in 0..2 {
        let sketch = t.statistics().column(col).unwrap();
        let e = exact(rows, col);
        assert_eq!(sketch.ndv(), e.ndv as f64, "{ctx}: col {col} ndv");
        assert_eq!(sketch.null_count(), e.nulls, "{ctx}: col {col} nulls");
        assert_eq!(
            sketch.num_min(),
            e.min.map(|i| i as f64),
            "{ctx}: col {col} min"
        );
        assert_eq!(
            sketch.num_max(),
            e.max.map(|i| i as f64),
            "{ctx}: col {col} max"
        );
    }
}

#[test]
fn sketches_stay_conservative_and_analyze_is_exact() {
    cases(64, 0x57A7_B04D, |rng| {
        let mut t = Table::new("t", schema(), GroupPolicy::RowStore);
        let mut rows: Vec<(RowKey, Vec<Value>)> = Vec::new();
        let nops = rng.usize_in(10, 120);
        for _ in 0..nops {
            match rng.weighted(&[5, 2, 2, 1]) {
                0 => {
                    let row = vec![arb_int(rng), arb_text(rng)];
                    let key = t.insert(row.clone()).unwrap();
                    rows.push((key, row));
                }
                1 if !rows.is_empty() => {
                    let i = rng.index(rows.len());
                    let (key, _) = rows.remove(i);
                    t.delete_row(key).unwrap();
                }
                2 if !rows.is_empty() => {
                    let i = rng.index(rows.len());
                    let col = rng.index(2);
                    let v = if col == 0 {
                        arb_int(rng)
                    } else {
                        arb_text(rng)
                    };
                    t.update_cell(rows[i].0, col, v.clone()).unwrap();
                    rows[i].1[col] = v;
                }
                3 if !rows.is_empty() => {
                    let i = rng.index(rows.len());
                    let row = vec![arb_int(rng), arb_text(rng)];
                    t.update_row(rows[i].0, row.clone()).unwrap();
                    rows[i].1 = row;
                }
                _ => {}
            }
        }
        check_conservative(&t, &rows, "after DML");

        t.analyze().unwrap();
        check_exact(&t, &rows, "after ANALYZE");

        // Stats keep tracking correctly after the rebuild.
        let row = vec![Value::Int(1000), Value::text("zzz")];
        let key = t.insert(row.clone()).unwrap();
        rows.push((key, row));
        check_conservative(&t, &rows, "post-analyze insert");
        let sketch = t.statistics().column(0).unwrap();
        assert_eq!(sketch.num_max(), Some(1000.0), "new max observed inline");
    });
}

/// Text columns track lexicographic bounds the same way.
#[test]
fn text_bounds_follow_observations() {
    let mut t = Table::new("t", schema(), GroupPolicy::RowStore);
    for s in ["mid", "aaa", "zzz", "mmm"] {
        t.insert(vec![Value::Int(0), Value::text(s)]).unwrap();
    }
    let sketch = t.statistics().column(1).unwrap();
    assert_eq!(sketch.text_min(), Some("aaa"));
    assert_eq!(sketch.text_max(), Some("zzz"));
    // Deleting the extremes leaves the envelope stale but still enclosing.
    let keys: Vec<RowKey> = t.iter_rows().map(|r| r.unwrap().0).collect();
    t.delete_row(keys[1]).unwrap();
    t.delete_row(keys[2]).unwrap();
    let sketch = t.statistics().column(1).unwrap();
    assert_eq!(sketch.text_min(), Some("aaa"));
    assert_eq!(sketch.text_max(), Some("zzz"));
    t.analyze().unwrap();
    let sketch = t.statistics().column(1).unwrap();
    assert_eq!(sketch.text_min(), Some("mid"));
    assert_eq!(sketch.text_max(), Some("mmm"));
}
