//! A sqllogictest-style golden suite harness for the DataSpread engine.
//!
//! `.test` files hold a sequence of records, each preceded by optional `#`
//! comment lines and separated by blank lines:
//!
//! ```text
//! # set up
//! statement ok
//! CREATE TABLE t (a INT, b TEXT)
//!
//! statement error table not found: nope
//! SELECT * FROM nope
//!
//! query IT rowsort
//! SELECT a, b FROM t
//! ----
//! 1 one
//! 2 two
//!
//! explain
//! SELECT a FROM t WHERE a = 1
//! ----
//! project: a
//! scan t rows=2 filters=1 est~1 cols=1/2
//!
//! cell A1 =1+2
//! bind tom B1 t
//! ```
//!
//! * `statement ok` — the statement must succeed (any statement kind).
//! * `statement error <substring>` — it must fail, and the error's display
//!   must contain the substring (typed errors stay pinned).
//! * `query <types> [rowsort]` — a result set; `<types>` is one character
//!   per expected column (`I` integer, `R` real, `T` text, `B` bool, `A`
//!   any — only the *count* is enforced). Rows are rendered one per line,
//!   columns space-separated, `NULL` for SQL NULL, `(empty)` for the empty
//!   string. With `rowsort` the result lines are sorted before comparison.
//! * `explain` — runs `EXPLAIN <sql>` and compares the plan lines verbatim.
//! * `analyze` — runs `EXPLAIN ANALYZE <sql>` and compares the annotated
//!   plan lines with every `time=…ms` normalized to `time=<t>` (actual row
//!   counts stay golden-locked; wall time is inherently nondeterministic).
//! * `cell <a1> <input>` — types `input` into the current sheet (formulas
//!   start with `=`), so `RANGETABLE`/`RANGEVALUE` queries have a grid.
//! * `bind <tom|rom> <a1> <table>` — binds a table region at `a1`.
//!
//! **Record mode**: with `SLT_RECORD=1` in the environment, expected blocks
//! of `query`/`explain` records are replaced by actual engine output and
//! the file is rewritten in place — the bootstrap and re-baseline path. CI
//! runs record mode followed by `git diff --exit-code` to prove the
//! committed corpus matches the engine.

use std::fmt::Write as _;
use std::path::Path;

use dataspread::{BindModel, Workbook};
use dataspread_relstore::vfs::os_vfs;
use dataspread_types::{CellAddr, Value};

/// One parsed record plus the comment lines that preceded it.
#[derive(Debug, Clone)]
pub struct Record {
    /// 1-based line number of the directive, for error messages.
    pub line: usize,
    /// Verbatim `#` comment lines preceding the record.
    pub comments: Vec<String>,
    /// The directive itself.
    pub kind: RecordKind,
}

/// The record kinds of the `.test` format.
#[derive(Debug, Clone)]
pub enum RecordKind {
    /// `statement ok` / `statement error <substring>`.
    Statement {
        /// `Some(substring)` for `statement error`.
        expect_err: Option<String>,
        /// The SQL text (may span lines).
        sql: String,
    },
    /// `query <types> [rowsort]` with expected result lines.
    Query {
        /// One character per expected output column.
        types: String,
        /// Sort result lines before comparing.
        rowsort: bool,
        /// The SQL text.
        sql: String,
        /// Expected result lines (after `----`).
        expected: Vec<String>,
    },
    /// `explain` with expected plan lines.
    Explain {
        /// The SELECT to explain (without the `EXPLAIN` keyword).
        sql: String,
        /// Expected plan lines (after `----`).
        expected: Vec<String>,
    },
    /// `analyze` with expected timing-normalized plan lines.
    Analyze {
        /// The SELECT to profile (without the `EXPLAIN ANALYZE` prefix).
        sql: String,
        /// Expected plan lines (after `----`), `time=<t>`-normalized.
        expected: Vec<String>,
    },
    /// `cell <a1> <input>`.
    Cell {
        /// Target cell in A1 notation.
        a1: String,
        /// Raw cell input (formulas start with `=`).
        input: String,
    },
    /// `bind <tom|rom> <a1> <table>`.
    Bind {
        /// Binding model name (`tom` or `rom`).
        model: String,
        /// Anchor cell in A1 notation.
        a1: String,
        /// Bound table name.
        table: String,
    },
}

/// A parsed `.test` file: records plus any trailing comment lines.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The records in file order.
    pub records: Vec<Record>,
    /// Comment lines after the last record.
    pub trailing: Vec<String>,
}

/// Parse a `.test` file's text.
pub fn parse(text: &str) -> Result<Corpus, String> {
    let lines: Vec<&str> = text.lines().collect();
    let mut records = Vec::new();
    let mut comments: Vec<String> = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let raw = lines[i];
        let line = raw.trim_end();
        if line.is_empty() {
            i += 1;
            continue;
        }
        if line.starts_with('#') {
            comments.push(line.to_string());
            i += 1;
            continue;
        }
        let at = i + 1;
        let taken = std::mem::take(&mut comments);
        let (kind, next) = parse_record(&lines, i).map_err(|e| format!("line {at}: {e}"))?;
        records.push(Record {
            line: at,
            comments: taken,
            kind,
        });
        i = next;
    }
    Ok(Corpus {
        records,
        trailing: comments,
    })
}

/// Parse one record starting at `lines[i]`; returns the record and the
/// index of the first unconsumed line.
fn parse_record(lines: &[&str], i: usize) -> Result<(RecordKind, usize), String> {
    let head = lines[i].trim_end();
    let mut words = head.split_whitespace();
    let directive = words.next().unwrap_or_default();
    match directive {
        "statement" => {
            let expect_err = match words.next() {
                Some("ok") => None,
                Some("error") => {
                    let rest = head
                        .splitn(3, char::is_whitespace)
                        .nth(2)
                        .unwrap_or("")
                        .trim();
                    Some(rest.to_string())
                }
                other => return Err(format!("expected `statement ok|error`, got {other:?}")),
            };
            let (sql, next) = take_sql(lines, i + 1, false)?;
            Ok((RecordKind::Statement { expect_err, sql }, next))
        }
        "query" => {
            let types = words
                .next()
                .ok_or("`query` needs a column-type string")?
                .to_string();
            let rowsort = match words.next() {
                None => false,
                Some("rowsort") => true,
                Some(other) => return Err(format!("unknown query option {other:?}")),
            };
            let (sql, sep) = take_sql(lines, i + 1, true)?;
            let (expected, next) = take_expected(lines, sep);
            Ok((
                RecordKind::Query {
                    types,
                    rowsort,
                    sql,
                    expected,
                },
                next,
            ))
        }
        "explain" => {
            let (sql, sep) = take_sql(lines, i + 1, true)?;
            let (expected, next) = take_expected(lines, sep);
            Ok((RecordKind::Explain { sql, expected }, next))
        }
        "analyze" => {
            let (sql, sep) = take_sql(lines, i + 1, true)?;
            let (expected, next) = take_expected(lines, sep);
            Ok((RecordKind::Analyze { sql, expected }, next))
        }
        "cell" => {
            let mut parts = head.splitn(3, char::is_whitespace);
            parts.next();
            let a1 = parts.next().ok_or("`cell` needs an address")?.to_string();
            let input = parts.next().unwrap_or("").to_string();
            Ok((RecordKind::Cell { a1, input }, i + 1))
        }
        "bind" => {
            let mut parts = head.split_whitespace();
            parts.next();
            let model = parts.next().ok_or("`bind` needs a model")?.to_string();
            let a1 = parts.next().ok_or("`bind` needs an address")?.to_string();
            let table = parts.next().ok_or("`bind` needs a table")?.to_string();
            Ok((RecordKind::Bind { model, a1, table }, i + 1))
        }
        other => Err(format!("unknown directive {other:?}")),
    }
}

/// Collect SQL lines. With `to_separator`, stop at (and consume) the `----`
/// line — required; otherwise stop at the first blank line or EOF.
fn take_sql(lines: &[&str], mut i: usize, to_separator: bool) -> Result<(String, usize), String> {
    let mut sql = Vec::new();
    while i < lines.len() {
        let line = lines[i].trim_end();
        if to_separator && line == "----" {
            return Ok((sql.join("\n"), i + 1));
        }
        if line.is_empty() {
            break;
        }
        sql.push(line);
        i += 1;
    }
    if to_separator {
        return Err("missing `----` separator".into());
    }
    if sql.is_empty() {
        return Err("missing SQL text".into());
    }
    Ok((sql.join("\n"), i))
}

/// Collect expected lines up to the next blank line or EOF.
fn take_expected(lines: &[&str], mut i: usize) -> (Vec<String>, usize) {
    let mut out = Vec::new();
    while i < lines.len() {
        let line = lines[i].trim_end();
        if line.is_empty() {
            break;
        }
        out.push(line.to_string());
        i += 1;
    }
    (out, i)
}

/// Render a corpus back to `.test` text (the record-mode writer).
pub fn render(corpus: &Corpus) -> String {
    let mut out = String::new();
    for (n, rec) in corpus.records.iter().enumerate() {
        if n > 0 {
            out.push('\n');
        }
        for c in &rec.comments {
            let _ = writeln!(out, "{c}");
        }
        match &rec.kind {
            RecordKind::Statement { expect_err, sql } => {
                match expect_err {
                    None => out.push_str("statement ok\n"),
                    Some(e) if e.is_empty() => out.push_str("statement error\n"),
                    Some(e) => {
                        let _ = writeln!(out, "statement error {e}");
                    }
                }
                let _ = writeln!(out, "{sql}");
            }
            RecordKind::Query {
                types,
                rowsort,
                sql,
                expected,
            } => {
                let opt = if *rowsort { " rowsort" } else { "" };
                let _ = writeln!(out, "query {types}{opt}");
                let _ = writeln!(out, "{sql}");
                out.push_str("----\n");
                for l in expected {
                    let _ = writeln!(out, "{l}");
                }
            }
            RecordKind::Explain { sql, expected } => {
                out.push_str("explain\n");
                let _ = writeln!(out, "{sql}");
                out.push_str("----\n");
                for l in expected {
                    let _ = writeln!(out, "{l}");
                }
            }
            RecordKind::Analyze { sql, expected } => {
                out.push_str("analyze\n");
                let _ = writeln!(out, "{sql}");
                out.push_str("----\n");
                for l in expected {
                    let _ = writeln!(out, "{l}");
                }
            }
            RecordKind::Cell { a1, input } => {
                let _ = writeln!(out, "cell {a1} {input}");
            }
            RecordKind::Bind { model, a1, table } => {
                let _ = writeln!(out, "bind {model} {a1} {table}");
            }
        }
    }
    if !corpus.trailing.is_empty() {
        out.push('\n');
        for c in &corpus.trailing {
            let _ = writeln!(out, "{c}");
        }
    }
    out
}

/// Golden cell rendering: `NULL` for SQL NULL, `(empty)` for the empty
/// string, `TRUE`/`FALSE` for booleans, display formatting otherwise
/// (integral floats print without a fraction, same as the sheet UI).
pub fn format_value(v: &Value) -> String {
    match v {
        Value::Empty => "NULL".to_string(),
        Value::Text(s) if s.is_empty() => "(empty)".to_string(),
        other => other.display_string(),
    }
}

/// Render a result set one line per row, columns space-separated.
pub fn format_rows(rows: &[Vec<Value>]) -> Vec<String> {
    rows.iter()
        .map(|r| r.iter().map(format_value).collect::<Vec<_>>().join(" "))
        .collect()
}

/// Normalize `EXPLAIN ANALYZE` output for golden comparison: every
/// `time=<digits-and-dots>ms` becomes `time=<t>`. Row counts and loop
/// counts are deterministic and stay verbatim.
pub fn normalize_timings(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut rest = line;
    while let Some(at) = rest.find("time=") {
        let (head, tail) = rest.split_at(at + "time=".len());
        out.push_str(head);
        let digits = tail
            .find(|c: char| !c.is_ascii_digit() && c != '.')
            .unwrap_or(tail.len());
        if digits > 0 && tail[digits..].starts_with("ms") {
            out.push_str("<t>");
            rest = &tail[digits + 2..];
        } else {
            rest = tail;
        }
    }
    out.push_str(rest);
    out
}

/// Is record mode on (`SLT_RECORD=1`)?
pub fn record_mode() -> bool {
    std::env::var("SLT_RECORD")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Run one `.test` file against a fresh [`Workbook`]. In record mode the
/// file is rewritten with actual output and the run always succeeds (unless
/// a `statement` record misbehaves). Otherwise returns every mismatch.
pub fn run_file(path: &Path) -> Result<(), String> {
    // File I/O rides the Vfs boundary (xcheck's vfs-boundary invariant:
    // library code never touches `std::fs` directly).
    let vfs = os_vfs();
    let raw = vfs
        .read(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let text =
        String::from_utf8(raw).map_err(|e| format!("{}: invalid utf8: {e}", path.display()))?;
    let mut corpus = parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let recording = record_mode();
    let mut failures: Vec<String> = Vec::new();
    let mut wb = Workbook::new();

    for rec in &mut corpus.records {
        let at = format!("{}:{}", path.display(), rec.line);
        match &mut rec.kind {
            RecordKind::Statement { expect_err, sql } => {
                let result = wb.execute(sql);
                match (expect_err.as_ref(), result) {
                    (None, Ok(_)) => {}
                    (None, Err(e)) => {
                        failures.push(format!("{at}: statement failed: {e}\n  {sql}"))
                    }
                    (Some(_), Ok(_)) => failures.push(format!(
                        "{at}: statement succeeded, expected error\n  {sql}"
                    )),
                    (Some(want), Err(e)) => {
                        let got = e.to_string();
                        if !got.contains(want.as_str()) {
                            failures.push(format!(
                                "{at}: error mismatch\n  want substring: {want}\n  got: {got}"
                            ));
                        }
                    }
                }
            }
            RecordKind::Query {
                types,
                rowsort,
                sql,
                expected,
            } => match wb.query(sql) {
                Err(e) => failures.push(format!("{at}: query failed: {e}\n  {sql}")),
                Ok((cols, rows)) => {
                    if cols.len() != types.len() {
                        failures.push(format!(
                            "{at}: column count mismatch: types `{types}` vs {} columns",
                            cols.len()
                        ));
                        continue;
                    }
                    let mut actual = format_rows(&rows);
                    if *rowsort {
                        actual.sort();
                    }
                    if recording {
                        *expected = actual;
                    } else if actual != *expected {
                        failures.push(diff(&at, sql, expected, &actual));
                    }
                }
            },
            RecordKind::Explain { sql, expected } => match wb.query(&format!("EXPLAIN {sql}")) {
                Err(e) => failures.push(format!("{at}: explain failed: {e}\n  {sql}")),
                Ok((_, rows)) => {
                    let actual: Vec<String> = rows
                        .iter()
                        .map(|r| format_value(r.first().unwrap_or(&Value::Empty)))
                        .collect();
                    if recording {
                        *expected = actual;
                    } else if actual != *expected {
                        failures.push(diff(&at, sql, expected, &actual));
                    }
                }
            },
            RecordKind::Analyze { sql, expected } => {
                match wb.query(&format!("EXPLAIN ANALYZE {sql}")) {
                    Err(e) => failures.push(format!("{at}: analyze failed: {e}\n  {sql}")),
                    Ok((_, rows)) => {
                        let actual: Vec<String> = rows
                            .iter()
                            .map(|r| {
                                normalize_timings(&format_value(r.first().unwrap_or(&Value::Empty)))
                            })
                            .collect();
                        if recording {
                            *expected = actual;
                        } else if actual != *expected {
                            failures.push(diff(&at, sql, expected, &actual));
                        }
                    }
                }
            }
            RecordKind::Cell { a1, input } => {
                let sheet = wb.current_sheet();
                match CellAddr::parse_a1(a1) {
                    Err(e) => failures.push(format!("{at}: bad address {a1}: {e}")),
                    Ok(addr) => {
                        if let Err(e) = wb.set_input(sheet, addr, input) {
                            failures.push(format!("{at}: cell input failed: {e}"));
                        }
                    }
                }
            }
            RecordKind::Bind { model, a1, table } => {
                let m = match model.as_str() {
                    "tom" => BindModel::Tom,
                    "rom" => BindModel::Rom,
                    other => {
                        failures.push(format!("{at}: unsupported bind model {other:?}"));
                        continue;
                    }
                };
                let sheet = wb.current_sheet();
                match CellAddr::parse_a1(a1) {
                    Err(e) => failures.push(format!("{at}: bad address {a1}: {e}")),
                    Ok(addr) => {
                        if let Err(e) = wb.bind_table(sheet, addr, table, m) {
                            failures.push(format!("{at}: bind failed: {e}"));
                        }
                    }
                }
            }
        }
    }

    if recording {
        vfs.write_file(path, render(&corpus).as_bytes())
            .map_err(|e| format!("{}: {e}", path.display()))?;
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn diff(at: &str, sql: &str, expected: &[String], actual: &[String]) -> String {
    format!(
        "{at}: result mismatch\n  {sql}\n  expected ({}):\n    {}\n  actual ({}):\n    {}",
        expected.len(),
        expected.join("\n    "),
        actual.len(),
        actual.join("\n    "),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# header comment
statement ok
CREATE TABLE t (a INT)

query I rowsort
SELECT a FROM t
----
1
2

explain
SELECT * FROM t
----
project: a
scan t rows=0

cell A1 =1+2

bind tom B1 t

# trailing note
";

    #[test]
    fn parse_and_render_round_trip() {
        let corpus = parse(SAMPLE).unwrap();
        assert_eq!(corpus.records.len(), 5);
        assert_eq!(corpus.trailing, vec!["# trailing note"]);
        let RecordKind::Query {
            types,
            rowsort,
            sql,
            expected,
        } = &corpus.records[1].kind
        else {
            panic!("expected query record");
        };
        assert_eq!(types, "I");
        assert!(rowsort);
        assert_eq!(sql, "SELECT a FROM t");
        assert_eq!(expected, &["1", "2"]);
        assert_eq!(render(&corpus), SAMPLE);
    }

    #[test]
    fn statement_error_keeps_substring() {
        let corpus = parse("statement error table not found: x\nSELECT * FROM x\n").unwrap();
        let RecordKind::Statement { expect_err, .. } = &corpus.records[0].kind else {
            panic!("expected statement");
        };
        assert_eq!(expect_err.as_deref(), Some("table not found: x"));
    }

    #[test]
    fn missing_separator_is_an_error() {
        let err = parse("query I\nSELECT 1\n").unwrap_err();
        assert!(err.contains("----"), "{err}");
    }

    #[test]
    fn timing_normalization() {
        assert_eq!(
            normalize_timings("scan t (actual rows=3 loops=1 time=0.123ms)"),
            "scan t (actual rows=3 loops=1 time=<t>)"
        );
        assert_eq!(
            normalize_timings("a time=1ms b time=22.5ms c"),
            "a time=<t> b time=<t> c"
        );
        // Not a timing: left alone.
        assert_eq!(normalize_timings("uptime=high"), "uptime=high");
        assert_eq!(normalize_timings("no timings here"), "no timings here");
    }

    #[test]
    fn analyze_record_round_trip() {
        let text = "analyze\nSELECT 1\n----\nproject: 1 (actual rows=1 loops=1 time=<t>)\n";
        let corpus = parse(text).unwrap();
        let RecordKind::Analyze { sql, expected } = &corpus.records[0].kind else {
            panic!("expected analyze record");
        };
        assert_eq!(sql, "SELECT 1");
        assert_eq!(expected.len(), 1);
        assert_eq!(render(&corpus), text);
    }

    #[test]
    fn value_formatting() {
        assert_eq!(format_value(&Value::Empty), "NULL");
        assert_eq!(format_value(&Value::Text(String::new())), "(empty)");
        assert_eq!(format_value(&Value::Int(-3)), "-3");
        assert_eq!(format_value(&Value::Float(2.0)), "2");
        assert_eq!(format_value(&Value::Bool(true)), "TRUE");
    }
}
