//! Differential check over the golden corpus: every SELECT must produce
//! the same multiset of rows under (a) the default stats-driven planner,
//! (b) costing disabled (syntactic join order), and (c) the nested-loop /
//! linear reference arms with every optimization off. Plan choice must
//! never change results.

use std::cmp::Ordering;
use std::path::PathBuf;

use dataspread::{BindModel, ExecOptions, Workbook};
use dataspread_slt::{parse, RecordKind};
use dataspread_types::{CellAddr, Value};

/// The three arms: cost-based (default), syntactic order, reference.
fn arms() -> [(&'static str, ExecOptions); 3] {
    [
        ("cost-based", ExecOptions::default()),
        (
            "syntactic",
            ExecOptions {
                cost_based: false,
                ..ExecOptions::default()
            },
        ),
        (
            "reference",
            ExecOptions {
                hash_join: false,
                hash_aggregation: false,
                predicate_pushdown: false,
                cost_based: false,
            },
        ),
    ]
}

/// Multiset normalization: a total row order. `Value::total_cmp` treats
/// `Int(2)` and `Float(2.0)` as equal, so ties break on the debug string
/// to keep the sort total across arms.
fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| {
        a.iter()
            .zip(b)
            .map(|(x, y)| {
                x.total_cmp(y)
                    .then_with(|| format!("{x:?}").cmp(&format!("{y:?}")))
            })
            .find(|o| o.is_ne())
            .unwrap_or(Ordering::Equal)
    });
    rows
}

#[test]
fn golden_corpus_plans_agree() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "test"))
        .collect();
    files.sort();

    let mut checked = 0usize;
    for path in files {
        let text = std::fs::read_to_string(&path).unwrap();
        let corpus = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let mut wb = Workbook::new();
        for rec in &corpus.records {
            match &rec.kind {
                // Replay setup exactly as the golden runner does; records
                // that are *expected* to fail just fail here too.
                RecordKind::Statement { sql, .. } => {
                    let _ = wb.execute(sql);
                }
                RecordKind::Cell { a1, input } => {
                    let sheet = wb.current_sheet();
                    let addr = CellAddr::parse_a1(a1).unwrap();
                    let _ = wb.set_input(sheet, addr, input);
                }
                RecordKind::Bind { model, a1, table } => {
                    let m = match model.as_str() {
                        "tom" => BindModel::Tom,
                        _ => BindModel::Rom,
                    };
                    let sheet = wb.current_sheet();
                    let addr = CellAddr::parse_a1(a1).unwrap();
                    let _ = wb.bind_table(sheet, addr, table, m);
                }
                RecordKind::Explain { .. } | RecordKind::Analyze { .. } => {}
                RecordKind::Query { sql, .. } => {
                    let mut baseline: Option<(String, Vec<Vec<Value>>)> = None;
                    for (name, opts) in arms() {
                        wb.set_exec_options(opts);
                        let rows = sorted(
                            wb.query(sql)
                                .unwrap_or_else(|e| {
                                    panic!(
                                        "{}:{}: {name} arm failed: {e}",
                                        path.display(),
                                        rec.line
                                    )
                                })
                                .1,
                        );
                        match &baseline {
                            None => baseline = Some((name.to_string(), rows)),
                            Some((base, expect)) => assert_eq!(
                                expect,
                                &rows,
                                "{}:{}: {sql}\n  {base} vs {name} arms disagree",
                                path.display(),
                                rec.line
                            ),
                        }
                    }
                    wb.set_exec_options(ExecOptions::default());
                    checked += 1;
                }
            }
        }
    }
    assert!(
        checked >= 300,
        "only {checked} SELECTs differentially checked"
    );
    println!("differential: {checked} SELECTs agree across 3 planner arms");
}
