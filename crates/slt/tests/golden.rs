//! Run every `.test` file in `tests/golden/` against a fresh engine.
//!
//! `SLT_RECORD=1 cargo test -p dataspread_slt --test golden` rewrites the
//! expected blocks from actual output (bootstrap / re-baseline); CI then
//! proves the committed corpus is current with `git diff --exit-code`.

use std::path::PathBuf;

use dataspread_slt::{parse, run_file, RecordKind};

fn corpus_files() -> Vec<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .map(|entry| entry.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "test"))
        .collect();
    files.sort();
    files
}

#[test]
fn golden_corpus() {
    let files = corpus_files();
    assert!(!files.is_empty(), "no .test files found");
    let mut failures = Vec::new();
    for path in &files {
        if let Err(e) = run_file(path) {
            failures.push(e);
        }
    }
    assert!(
        failures.is_empty(),
        "{} corpus file(s) failed:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The suite must stay substantial: at least 300 result-bearing records
/// overall and at least 20 explain records pinning plan shapes.
#[test]
fn corpus_is_substantial() {
    let mut queries = 0usize;
    let mut explains = 0usize;
    let mut analyzes = 0usize;
    for path in corpus_files() {
        let text = std::fs::read_to_string(&path).unwrap();
        let corpus = parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        for rec in &corpus.records {
            match rec.kind {
                RecordKind::Query { .. } => queries += 1,
                RecordKind::Explain { .. } => explains += 1,
                RecordKind::Analyze { .. } => analyzes += 1,
                _ => {}
            }
        }
    }
    assert!(
        queries + explains >= 300,
        "golden corpus has {queries} query + {explains} explain records; need >= 300"
    );
    assert!(
        explains >= 20,
        "golden corpus has {explains} explain records; need >= 20"
    );
    assert!(
        analyzes >= 5,
        "golden corpus has {analyzes} analyze records; need >= 5"
    );
}
