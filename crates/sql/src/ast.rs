//! SQL abstract syntax.
//!
//! The grammar covers the subset the DataSpread demo exercises — SELECT with
//! joins/aggregation/ordering, the four DML/DDL statement families, and the
//! two positional-addressing extensions ([`Expr::RangeValue`] and
//! [`TableExpr::RangeTable`]) that let queries reach *into the spreadsheet*.

use dataspread_types::{DataType, Value};

// Statements are parsed once and consumed; the size skew from the inline
// `SelectStmt` is irrelevant next to boxing every construction site.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    Select(SelectStmt),
    Insert {
        table: String,
        /// Explicit column list, if given.
        columns: Option<Vec<String>>,
        source: InsertSource,
    },
    Update {
        table: String,
        sets: Vec<(String, Expr)>,
        filter: Option<Expr>,
    },
    Delete {
        table: String,
        filter: Option<Expr>,
    },
    CreateTable {
        name: String,
        columns: Vec<ColumnSpec>,
        if_not_exists: bool,
    },
    DropTable {
        name: String,
        if_exists: bool,
    },
    AlterTable {
        name: String,
        action: AlterAction,
    },
    /// `EXPLAIN <select>` — render the chosen physical plan as a text tree
    /// without executing it.
    Explain(SelectStmt),
    /// `EXPLAIN ANALYZE <select>` — execute the plan, then render the tree
    /// annotated with actual rows, loops, and per-operator wall time.
    ExplainAnalyze(SelectStmt),
    /// `ANALYZE [table]` — rebuild optimizer statistics exactly, for one
    /// table or (with no argument) every table in the catalog.
    Analyze {
        table: Option<String>,
    },
}

#[derive(Clone, Debug, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Select(Box<SelectStmt>),
}

#[derive(Clone, Debug, PartialEq)]
pub enum AlterAction {
    AddColumn {
        spec: ColumnSpec,
        default: Option<Expr>,
    },
    DropColumn(String),
    RenameColumn {
        from: String,
        to: String,
    },
}

#[derive(Clone, Debug, PartialEq)]
pub struct ColumnSpec {
    pub name: String,
    pub dtype: DataType,
    pub not_null: bool,
    pub primary_key: bool,
}

#[derive(Clone, Debug, PartialEq, Default)]
pub struct SelectStmt {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Option<TableExpr>,
    pub filter: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<Expr>,
    pub offset: Option<Expr>,
}

#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    Expr {
        expr: Expr,
        alias: Option<String>,
    },
}

#[derive(Clone, Debug, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub asc: bool,
}

#[derive(Clone, Debug, PartialEq)]
pub enum TableExpr {
    Named {
        name: String,
        alias: Option<String>,
    },
    /// `RANGETABLE('A1:D100')` — a spreadsheet region as a relation
    /// (paper §2.2, "Novel Spreadsheet Constructs").
    RangeTable {
        range: String,
        alias: Option<String>,
    },
    Subquery {
        query: Box<SelectStmt>,
        alias: String,
    },
    Join {
        left: Box<TableExpr>,
        right: Box<TableExpr>,
        kind: JoinKind,
        constraint: JoinConstraint,
    },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Cross,
}

#[derive(Clone, Debug, PartialEq)]
pub enum JoinConstraint {
    On(Expr),
    /// `NATURAL JOIN`: equi-join on all same-named columns.
    Natural,
    None,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Concat,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    Literal(Value),
    Column {
        table: Option<String>,
        name: String,
    },
    Unary {
        op: UnOp,
        expr: Box<Expr>,
    },
    Binary {
        left: Box<Expr>,
        op: BinOp,
        right: Box<Expr>,
    },
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_: Option<Box<Expr>>,
    },
    /// Scalar or aggregate function call; `COUNT(*)` is represented with an
    /// empty argument list and `star = true`.
    Function {
        name: String,
        args: Vec<Expr>,
        distinct: bool,
        star: bool,
    },
    Cast {
        expr: Box<Expr>,
        dtype: DataType,
    },
    /// `RANGEVALUE('B1')` — a scalar read from the spreadsheet
    /// (paper §2.2).
    RangeValue(String),
}

impl Expr {
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            table: None,
            name: name.to_string(),
        }
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Is this (sub)tree an aggregate call at the top level?
    pub fn is_aggregate_call(&self) -> bool {
        matches!(self, Expr::Function { name, .. } if is_aggregate_name(name))
    }

    /// Does the tree contain an aggregate call anywhere?
    pub fn contains_aggregate(&self) -> bool {
        if self.is_aggregate_call() {
            return true;
        }
        match self {
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
                expr.contains_aggregate()
            }
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(|e| e.contains_aggregate())
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::Case {
                operand,
                branches,
                else_,
            } => {
                operand.as_ref().is_some_and(|e| e.contains_aggregate())
                    || branches
                        .iter()
                        .any(|(w, t)| w.contains_aggregate() || t.contains_aggregate())
                    || else_.as_ref().is_some_and(|e| e.contains_aggregate())
            }
            Expr::Function { args, .. } => args.iter().any(|e| e.contains_aggregate()),
            _ => false,
        }
    }

    /// Visit every column reference in the tree.
    pub fn for_each_column(&self, f: &mut dyn FnMut(&Option<String>, &str)) {
        match self {
            Expr::Column { table, name } => f(table, name),
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
                expr.for_each_column(f)
            }
            Expr::Binary { left, right, .. } => {
                left.for_each_column(f);
                right.for_each_column(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.for_each_column(f);
                for e in list {
                    e.for_each_column(f);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.for_each_column(f);
                low.for_each_column(f);
                high.for_each_column(f);
            }
            Expr::Like { expr, pattern, .. } => {
                expr.for_each_column(f);
                pattern.for_each_column(f);
            }
            Expr::Case {
                operand,
                branches,
                else_,
            } => {
                if let Some(e) = operand {
                    e.for_each_column(f);
                }
                for (w, t) in branches {
                    w.for_each_column(f);
                    t.for_each_column(f);
                }
                if let Some(e) = else_ {
                    e.for_each_column(f);
                }
            }
            Expr::Function { args, .. } => {
                for e in args {
                    e.for_each_column(f);
                }
            }
            Expr::Literal(_) | Expr::RangeValue(_) => {}
        }
    }
}

/// Aggregate function names recognized by the executor.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "COUNT" | "SUM" | "AVG" | "MIN" | "MAX"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Function {
            name: "sum".into(),
            args: vec![Expr::col("x")],
            distinct: false,
            star: false,
        };
        assert!(agg.is_aggregate_call());
        assert!(agg.contains_aggregate());
        let wrapped = Expr::Binary {
            left: Box::new(agg),
            op: BinOp::Add,
            right: Box::new(Expr::lit(1)),
        };
        assert!(!wrapped.is_aggregate_call());
        assert!(wrapped.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
    }

    #[test]
    fn column_visitor() {
        let e = Expr::Binary {
            left: Box::new(Expr::Column {
                table: Some("t".into()),
                name: "a".into(),
            }),
            op: BinOp::Add,
            right: Box::new(Expr::col("b")),
        };
        let mut seen = Vec::new();
        e.for_each_column(&mut |t, n| seen.push((t.clone(), n.to_string())));
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0], (Some("t".to_string()), "a".to_string()));
    }
}
