//! Bound expressions and SQL evaluation semantics.
//!
//! ASTs are *bound* against a relation (column names → indices, aggregates →
//! slots, `RANGEVALUE` → resolved literals) once, then evaluated per row.
//! NULL propagates through arithmetic and comparisons; `AND`/`OR` use
//! three-valued logic; text comparison is case-sensitive (SQL), unlike the
//! spreadsheet formula layer.

use std::cmp::Ordering;
use std::collections::HashMap;

use dataspread_types::{DataType, DsError, DsResult, Value};

use crate::ast::{BinOp, Expr, UnOp};
use crate::resolver::SheetResolver;

/// One column of an intermediate relation.
#[derive(Clone, Debug)]
pub struct ColInfo {
    /// Table alias (lower-cased) this column is visible under, if any.
    pub qualifier: Option<String>,
    pub name: String,
}

impl ColInfo {
    pub fn new(qualifier: Option<&str>, name: impl Into<String>) -> Self {
        ColInfo {
            qualifier: qualifier.map(|q| q.to_ascii_lowercase()),
            name: name.into(),
        }
    }
}

/// Aggregate slots available while binding projection/HAVING/ORDER BY of a
/// grouped query: canonical AST text → slot index.
pub struct AggContext {
    pub slots: HashMap<String, usize>,
}

/// Canonical key of an aggregate call (structural identity).
pub fn agg_key(e: &Expr) -> String {
    format!("{e:?}")
}

/// A bound, executable expression.
#[derive(Clone, Debug)]
pub enum BExpr {
    Literal(Value),
    Col(usize),
    Unary {
        op: UnOp,
        expr: Box<BExpr>,
    },
    Binary {
        left: Box<BExpr>,
        op: BinOp,
        right: Box<BExpr>,
    },
    IsNull {
        expr: Box<BExpr>,
        negated: bool,
    },
    InList {
        expr: Box<BExpr>,
        list: Vec<BExpr>,
        negated: bool,
    },
    Between {
        expr: Box<BExpr>,
        low: Box<BExpr>,
        high: Box<BExpr>,
        negated: bool,
    },
    Like {
        expr: Box<BExpr>,
        pattern: Box<BExpr>,
        negated: bool,
    },
    Case {
        operand: Option<Box<BExpr>>,
        branches: Vec<(BExpr, BExpr)>,
        else_: Option<Box<BExpr>>,
    },
    ScalarFn {
        name: String,
        args: Vec<BExpr>,
    },
    Cast {
        expr: Box<BExpr>,
        dtype: DataType,
    },
    /// Reference to a precomputed aggregate slot.
    AggRef(usize),
}

/// Bind `expr` against the columns of a relation. `aggs` supplies aggregate
/// slots (grouped queries); without it, aggregate calls are an error.
pub fn bind(
    expr: &Expr,
    cols: &[ColInfo],
    aggs: Option<&AggContext>,
    resolver: &dyn SheetResolver,
) -> DsResult<BExpr> {
    if expr.is_aggregate_call() {
        if let Some(ctx) = aggs {
            let key = agg_key(expr);
            if let Some(&slot) = ctx.slots.get(&key) {
                return Ok(BExpr::AggRef(slot));
            }
        }
        return Err(DsError::Sql(
            "aggregate function not allowed in this context".into(),
        ));
    }
    Ok(match expr {
        Expr::Literal(v) => BExpr::Literal(v.clone()),
        Expr::Column { table, name } => BExpr::Col(resolve_column(cols, table.as_deref(), name)?),
        Expr::Unary { op, expr } => BExpr::Unary {
            op: *op,
            expr: Box::new(bind(expr, cols, aggs, resolver)?),
        },
        Expr::Binary { left, op, right } => BExpr::Binary {
            left: Box::new(bind(left, cols, aggs, resolver)?),
            op: *op,
            right: Box::new(bind(right, cols, aggs, resolver)?),
        },
        Expr::IsNull { expr, negated } => BExpr::IsNull {
            expr: Box::new(bind(expr, cols, aggs, resolver)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => BExpr::InList {
            expr: Box::new(bind(expr, cols, aggs, resolver)?),
            list: list
                .iter()
                .map(|e| bind(e, cols, aggs, resolver))
                .collect::<DsResult<_>>()?,
            negated: *negated,
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => BExpr::Between {
            expr: Box::new(bind(expr, cols, aggs, resolver)?),
            low: Box::new(bind(low, cols, aggs, resolver)?),
            high: Box::new(bind(high, cols, aggs, resolver)?),
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => BExpr::Like {
            expr: Box::new(bind(expr, cols, aggs, resolver)?),
            pattern: Box::new(bind(pattern, cols, aggs, resolver)?),
            negated: *negated,
        },
        Expr::Case {
            operand,
            branches,
            else_,
        } => BExpr::Case {
            operand: match operand {
                Some(e) => Some(Box::new(bind(e, cols, aggs, resolver)?)),
                None => None,
            },
            branches: branches
                .iter()
                .map(|(w, t)| {
                    Ok((
                        bind(w, cols, aggs, resolver)?,
                        bind(t, cols, aggs, resolver)?,
                    ))
                })
                .collect::<DsResult<_>>()?,
            else_: match else_ {
                Some(e) => Some(Box::new(bind(e, cols, aggs, resolver)?)),
                None => None,
            },
        },
        Expr::Function {
            name,
            args,
            distinct,
            star,
        } => {
            if *distinct || *star {
                return Err(DsError::Sql(format!(
                    "DISTINCT/* arguments only valid in aggregates, not `{name}`"
                )));
            }
            let uname = name.to_ascii_uppercase();
            if !is_scalar_fn(&uname) {
                return Err(DsError::Sql(format!("unknown function `{name}`")));
            }
            BExpr::ScalarFn {
                name: uname,
                args: args
                    .iter()
                    .map(|e| bind(e, cols, aggs, resolver))
                    .collect::<DsResult<_>>()?,
            }
        }
        Expr::Cast { expr, dtype } => BExpr::Cast {
            expr: Box::new(bind(expr, cols, aggs, resolver)?),
            dtype: *dtype,
        },
        Expr::RangeValue(r) => BExpr::Literal(resolver.range_value(r)?),
    })
}

/// Resolve a (possibly qualified) column name against a relation.
pub fn resolve_column(cols: &[ColInfo], table: Option<&str>, name: &str) -> DsResult<usize> {
    let tq = table.map(|t| t.to_ascii_lowercase());
    let mut found = None;
    for (i, c) in cols.iter().enumerate() {
        let name_ok = c.name.eq_ignore_ascii_case(name);
        let table_ok = match (&tq, &c.qualifier) {
            (None, _) => true,
            (Some(q), Some(cq)) => q == cq,
            (Some(_), None) => false,
        };
        if name_ok && table_ok {
            if found.is_some() {
                return Err(DsError::Sql(format!("ambiguous column `{name}`")));
            }
            found = Some(i);
        }
    }
    found.ok_or_else(|| DsError::ColumnNotFound(name.to_string()))
}

fn is_scalar_fn(uname: &str) -> bool {
    matches!(
        uname,
        "ABS"
            | "UPPER"
            | "LOWER"
            | "LENGTH"
            | "SUBSTR"
            | "SUBSTRING"
            | "TRIM"
            | "ROUND"
            | "FLOOR"
            | "CEIL"
            | "CEILING"
            | "COALESCE"
            | "NULLIF"
            | "CONCAT"
            | "REPLACE"
            | "MOD"
            | "POWER"
            | "POW"
            | "SQRT"
            | "SIGN"
    )
}

/// Evaluate a bound expression against one row (plus aggregate slots).
pub fn eval(e: &BExpr, row: &[Value], aggs: &[Value]) -> DsResult<Value> {
    Ok(match e {
        BExpr::Literal(v) => v.clone(),
        BExpr::Col(i) => row.get(*i).cloned().unwrap_or(Value::Empty),
        BExpr::AggRef(i) => aggs.get(*i).cloned().unwrap_or(Value::Empty),
        BExpr::Unary { op, expr } => {
            let v = eval(expr, row, aggs)?;
            match op {
                UnOp::Neg => match numeric(&v)? {
                    None => Value::Empty,
                    Some(Num::Int(i)) => Value::Int(
                        i.checked_neg()
                            .ok_or_else(|| DsError::Sql("integer overflow".into()))?,
                    ),
                    Some(Num::Float(f)) => Value::Float(-f),
                },
                UnOp::Not => match truth(&v)? {
                    None => Value::Empty,
                    Some(b) => Value::Bool(!b),
                },
            }
        }
        BExpr::Binary { left, op, right } => {
            match op {
                BinOp::And | BinOp::Or => {
                    let l = truth(&eval(left, row, aggs)?)?;
                    // Short-circuit on the dominant value.
                    match (op, l) {
                        (BinOp::And, Some(false)) => return Ok(Value::Bool(false)),
                        (BinOp::Or, Some(true)) => return Ok(Value::Bool(true)),
                        _ => {}
                    }
                    let r = truth(&eval(right, row, aggs)?)?;
                    match op {
                        BinOp::And => match (l, r) {
                            (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                            (Some(true), Some(true)) => Value::Bool(true),
                            _ => Value::Empty,
                        },
                        BinOp::Or => match (l, r) {
                            (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                            (Some(false), Some(false)) => Value::Bool(false),
                            _ => Value::Empty,
                        },
                        _ => unreachable!(),
                    }
                }
                BinOp::Concat => {
                    let l = eval(left, row, aggs)?;
                    let r = eval(right, row, aggs)?;
                    if l.is_empty() || r.is_empty() {
                        Value::Empty
                    } else {
                        Value::Text(format!("{}{}", l.display_string(), r.display_string()))
                    }
                }
                BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => {
                    let l = eval(left, row, aggs)?;
                    let r = eval(right, row, aggs)?;
                    match sql_compare(&l, &r)? {
                        None => Value::Empty,
                        Some(ord) => Value::Bool(match op {
                            BinOp::Eq => ord == Ordering::Equal,
                            BinOp::NotEq => ord != Ordering::Equal,
                            BinOp::Lt => ord == Ordering::Less,
                            BinOp::LtEq => ord != Ordering::Greater,
                            BinOp::Gt => ord == Ordering::Greater,
                            BinOp::GtEq => ord != Ordering::Less,
                            _ => unreachable!(),
                        }),
                    }
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                    let l = eval(left, row, aggs)?;
                    let r = eval(right, row, aggs)?;
                    arith(*op, &l, &r)?
                }
            }
        }
        BExpr::IsNull { expr, negated } => {
            let v = eval(expr, row, aggs)?;
            Value::Bool(v.is_empty() != *negated)
        }
        BExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval(expr, row, aggs)?;
            if v.is_empty() {
                return Ok(Value::Empty);
            }
            let mut saw_null = false;
            for item in list {
                let w = eval(item, row, aggs)?;
                match sql_compare(&v, &w)? {
                    Some(Ordering::Equal) => return Ok(Value::Bool(!*negated)),
                    None => saw_null = true,
                    _ => {}
                }
            }
            if saw_null {
                Value::Empty
            } else {
                Value::Bool(*negated)
            }
        }
        BExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(expr, row, aggs)?;
            let lo = eval(low, row, aggs)?;
            let hi = eval(high, row, aggs)?;
            let ge = sql_compare(&v, &lo)?;
            let le = sql_compare(&v, &hi)?;
            match (ge, le) {
                (Some(a), Some(b)) => {
                    let inside = a != Ordering::Less && b != Ordering::Greater;
                    Value::Bool(inside != *negated)
                }
                _ => Value::Empty,
            }
        }
        BExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, row, aggs)?;
            let p = eval(pattern, row, aggs)?;
            if v.is_empty() || p.is_empty() {
                return Ok(Value::Empty);
            }
            let matched = like_match(&v.display_string(), &p.display_string());
            Value::Bool(matched != *negated)
        }
        BExpr::Case {
            operand,
            branches,
            else_,
        } => {
            match operand {
                Some(op_expr) => {
                    let v = eval(op_expr, row, aggs)?;
                    for (w, t) in branches {
                        let w = eval(w, row, aggs)?;
                        if sql_compare(&v, &w)? == Some(Ordering::Equal) {
                            return eval(t, row, aggs);
                        }
                    }
                }
                None => {
                    for (w, t) in branches {
                        if truth(&eval(w, row, aggs)?)? == Some(true) {
                            return eval(t, row, aggs);
                        }
                    }
                }
            }
            match else_ {
                Some(e) => eval(e, row, aggs)?,
                None => Value::Empty,
            }
        }
        BExpr::ScalarFn { name, args } => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval(a, row, aggs))
                .collect::<DsResult<_>>()?;
            scalar_fn(name, &vals)?
        }
        BExpr::Cast { expr, dtype } => {
            let v = eval(expr, row, aggs)?;
            if v.is_empty() {
                Value::Empty
            } else {
                dtype
                    .coerce_for_storage(v.clone())
                    .ok_or_else(|| DsError::Sql(format!("cannot CAST {v:?} to {dtype}")))?
            }
        }
    })
}

/// Three-valued truth of a value. Text is not implicitly truthy in SQL.
pub fn truth(v: &Value) -> DsResult<Option<bool>> {
    match v {
        Value::Empty => Ok(None),
        Value::Bool(b) => Ok(Some(*b)),
        Value::Int(i) => Ok(Some(*i != 0)),
        Value::Float(f) => Ok(Some(*f != 0.0)),
        other => Err(DsError::Sql(format!("value {other:?} is not a boolean"))),
    }
}

enum Num {
    Int(i64),
    Float(f64),
}

fn numeric(v: &Value) -> DsResult<Option<Num>> {
    match v {
        Value::Empty => Ok(None),
        Value::Int(i) => Ok(Some(Num::Int(*i))),
        Value::Float(f) => Ok(Some(Num::Float(*f))),
        Value::Bool(b) => Ok(Some(Num::Int(*b as i64))),
        other => Err(DsError::Sql(format!("value {other:?} is not numeric"))),
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> DsResult<Value> {
    let (a, b) = match (numeric(l)?, numeric(r)?) {
        (Some(a), Some(b)) => (a, b),
        _ => return Ok(Value::Empty),
    };
    Ok(match (a, b) {
        (Num::Int(x), Num::Int(y)) => match op {
            BinOp::Add => int_or_err(x.checked_add(y))?,
            BinOp::Sub => int_or_err(x.checked_sub(y))?,
            BinOp::Mul => int_or_err(x.checked_mul(y))?,
            BinOp::Div => {
                if y == 0 {
                    return Err(DsError::Sql("division by zero".into()));
                }
                if x % y == 0 {
                    Value::Int(x / y)
                } else {
                    Value::Float(x as f64 / y as f64)
                }
            }
            BinOp::Mod => {
                if y == 0 {
                    return Err(DsError::Sql("division by zero".into()));
                }
                Value::Int(x % y)
            }
            _ => unreachable!(),
        },
        (a, b) => {
            let x = match a {
                Num::Int(i) => i as f64,
                Num::Float(f) => f,
            };
            let y = match b {
                Num::Int(i) => i as f64,
                Num::Float(f) => f,
            };
            match op {
                BinOp::Add => Value::Float(x + y),
                BinOp::Sub => Value::Float(x - y),
                BinOp::Mul => Value::Float(x * y),
                BinOp::Div => {
                    if y == 0.0 {
                        return Err(DsError::Sql("division by zero".into()));
                    }
                    Value::Float(x / y)
                }
                BinOp::Mod => {
                    if y == 0.0 {
                        return Err(DsError::Sql("division by zero".into()));
                    }
                    Value::Float(x % y)
                }
                _ => unreachable!(),
            }
        }
    })
}

fn int_or_err(v: Option<i64>) -> DsResult<Value> {
    v.map(Value::Int)
        .ok_or_else(|| DsError::Sql("integer overflow".into()))
}

/// SQL comparison: `Ok(None)` when either side is NULL; numeric types
/// unified; text compared case-sensitively; mixing incomparable types is an
/// error.
pub fn sql_compare(l: &Value, r: &Value) -> DsResult<Option<Ordering>> {
    use Value::*;
    Ok(match (l, r) {
        (Empty, _) | (_, Empty) => None,
        (Int(a), Int(b)) => Some(a.cmp(b)),
        (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
        (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
        (Float(a), Float(b)) => a.partial_cmp(b),
        (Text(a), Text(b)) => Some(a.cmp(b)),
        (Bool(a), Bool(b)) => Some(a.cmp(b)),
        _ => return Err(DsError::Sql(format!("cannot compare {l:?} with {r:?}"))),
    })
}

/// SQL LIKE with `%` and `_`, case-insensitive (SQLite-style, friendlier to
/// spreadsheet-sourced text).
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => {
                // Collapse consecutive %.
                let p = &p[1..];
                if p.is_empty() {
                    return true;
                }
                for skip in 0..=t.len() {
                    if rec(&t[skip..], p) {
                        return true;
                    }
                }
                false
            }
            Some('_') => !t.is_empty() && rec(&t[1..], &p[1..]),
            Some(c) => !t.is_empty() && t[0] == *c && rec(&t[1..], &p[1..]),
        }
    }
    let t: Vec<char> = text.to_lowercase().chars().collect();
    let p: Vec<char> = pattern.to_lowercase().chars().collect();
    rec(&t, &p)
}

fn scalar_fn(name: &str, args: &[Value]) -> DsResult<Value> {
    fn need(args: &[Value], n: usize, name: &str) -> DsResult<()> {
        if args.len() != n {
            return Err(DsError::Sql(format!(
                "{name} takes {n} argument(s), got {}",
                args.len()
            )));
        }
        Ok(())
    }
    // NULL-propagating helpers.
    fn f64_arg(v: &Value) -> DsResult<Option<f64>> {
        match numeric(v)? {
            None => Ok(None),
            Some(Num::Int(i)) => Ok(Some(i as f64)),
            Some(Num::Float(f)) => Ok(Some(f)),
        }
    }
    fn text_arg(v: &Value) -> Option<String> {
        if v.is_empty() {
            None
        } else {
            Some(v.display_string())
        }
    }
    Ok(match name {
        "ABS" => {
            need(args, 1, name)?;
            match numeric(&args[0])? {
                None => Value::Empty,
                Some(Num::Int(i)) => Value::Int(i.abs()),
                Some(Num::Float(f)) => Value::Float(f.abs()),
            }
        }
        "SIGN" => {
            need(args, 1, name)?;
            match f64_arg(&args[0])? {
                None => Value::Empty,
                Some(f) => Value::Int(if f > 0.0 {
                    1
                } else if f < 0.0 {
                    -1
                } else {
                    0
                }),
            }
        }
        "UPPER" => {
            need(args, 1, name)?;
            match text_arg(&args[0]) {
                None => Value::Empty,
                Some(s) => Value::Text(s.to_uppercase()),
            }
        }
        "LOWER" => {
            need(args, 1, name)?;
            match text_arg(&args[0]) {
                None => Value::Empty,
                Some(s) => Value::Text(s.to_lowercase()),
            }
        }
        "LENGTH" => {
            need(args, 1, name)?;
            match text_arg(&args[0]) {
                None => Value::Empty,
                Some(s) => Value::Int(s.chars().count() as i64),
            }
        }
        "TRIM" => {
            need(args, 1, name)?;
            match text_arg(&args[0]) {
                None => Value::Empty,
                Some(s) => Value::Text(s.trim().to_string()),
            }
        }
        "SUBSTR" | "SUBSTRING" => {
            if args.len() != 2 && args.len() != 3 {
                return Err(DsError::Sql("SUBSTR takes 2 or 3 arguments".into()));
            }
            let Some(s) = text_arg(&args[0]) else {
                return Ok(Value::Empty);
            };
            let start = match args[1].coerce_i64() {
                Ok(v) => v,
                Err(_) => return Err(DsError::Sql("SUBSTR start must be an integer".into())),
            };
            let chars: Vec<char> = s.chars().collect();
            let start0 = (start.max(1) - 1) as usize;
            let len = if args.len() == 3 {
                match args[2].coerce_i64() {
                    Ok(v) if v >= 0 => v as usize,
                    _ => {
                        return Err(DsError::Sql(
                            "SUBSTR length must be a non-negative integer".into(),
                        ))
                    }
                }
            } else {
                chars.len()
            };
            let out: String = chars.iter().skip(start0).take(len).collect();
            Value::Text(out)
        }
        "REPLACE" => {
            need(args, 3, name)?;
            match (text_arg(&args[0]), text_arg(&args[1]), text_arg(&args[2])) {
                (Some(s), Some(from), Some(to)) if !from.is_empty() => {
                    Value::Text(s.replace(&from, &to))
                }
                (Some(s), _, _) => Value::Text(s),
                _ => Value::Empty,
            }
        }
        "ROUND" => {
            if args.len() != 1 && args.len() != 2 {
                return Err(DsError::Sql("ROUND takes 1 or 2 arguments".into()));
            }
            let Some(x) = f64_arg(&args[0])? else {
                return Ok(Value::Empty);
            };
            let digits = if args.len() == 2 {
                args[1]
                    .coerce_i64()
                    .map_err(|_| DsError::Sql("ROUND digits must be integer".into()))?
            } else {
                0
            };
            let m = 10f64.powi(digits as i32);
            let r = (x * m).round() / m;
            if digits <= 0 && r.abs() < i64::MAX as f64 {
                Value::Int(r as i64)
            } else {
                Value::Float(r)
            }
        }
        "FLOOR" => {
            need(args, 1, name)?;
            match f64_arg(&args[0])? {
                None => Value::Empty,
                Some(f) => Value::Int(f.floor() as i64),
            }
        }
        "CEIL" | "CEILING" => {
            need(args, 1, name)?;
            match f64_arg(&args[0])? {
                None => Value::Empty,
                Some(f) => Value::Int(f.ceil() as i64),
            }
        }
        "SQRT" => {
            need(args, 1, name)?;
            match f64_arg(&args[0])? {
                None => Value::Empty,
                Some(f) if f < 0.0 => return Err(DsError::Sql("SQRT of negative".into())),
                Some(f) => Value::Float(f.sqrt()),
            }
        }
        "POWER" | "POW" => {
            need(args, 2, name)?;
            match (f64_arg(&args[0])?, f64_arg(&args[1])?) {
                (Some(a), Some(b)) => Value::Float(a.powf(b)),
                _ => Value::Empty,
            }
        }
        "MOD" => {
            need(args, 2, name)?;
            arith(BinOp::Mod, &args[0], &args[1])?
        }
        "COALESCE" => args
            .iter()
            .find(|v| !v.is_empty())
            .cloned()
            .unwrap_or(Value::Empty),
        "NULLIF" => {
            need(args, 2, name)?;
            if sql_compare(&args[0], &args[1])? == Some(Ordering::Equal) {
                Value::Empty
            } else {
                args[0].clone()
            }
        }
        "CONCAT" => {
            let mut s = String::new();
            for v in args {
                s.push_str(&v.display_string());
            }
            Value::Text(s)
        }
        other => return Err(DsError::Sql(format!("unknown function `{other}`"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolver::NoSheet;

    fn cols() -> Vec<ColInfo> {
        vec![ColInfo::new(Some("t"), "a"), ColInfo::new(Some("t"), "b")]
    }

    fn ev(expr: &Expr, row: &[Value]) -> DsResult<Value> {
        let b = bind(expr, &cols(), None, &NoSheet)?;
        eval(&b, row, &[])
    }

    fn p(sql_expr: &str) -> Expr {
        // Parse via a throwaway SELECT.
        match crate::parser::parse_statement(&format!("SELECT {sql_expr}")).unwrap() {
            crate::ast::Statement::Select(s) => match s.projection.into_iter().next().unwrap() {
                crate::ast::SelectItem::Expr { expr, .. } => expr,
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    #[test]
    fn arithmetic_int_float() {
        assert_eq!(ev(&p("1 + 2 * 3"), &[]).unwrap(), Value::Int(7));
        assert_eq!(ev(&p("7 / 2"), &[]).unwrap(), Value::Float(3.5));
        assert_eq!(ev(&p("8 / 2"), &[]).unwrap(), Value::Int(4));
        assert_eq!(ev(&p("7 % 3"), &[]).unwrap(), Value::Int(1));
        assert_eq!(ev(&p("1.5 + 1"), &[]).unwrap(), Value::Float(2.5));
        assert!(ev(&p("1 / 0"), &[]).is_err());
    }

    #[test]
    fn null_propagates() {
        assert_eq!(ev(&p("NULL + 1"), &[]).unwrap(), Value::Empty);
        assert_eq!(ev(&p("NULL = NULL"), &[]).unwrap(), Value::Empty);
        assert_eq!(ev(&p("NULL IS NULL"), &[]).unwrap(), Value::Bool(true));
        assert_eq!(ev(&p("1 IS NOT NULL"), &[]).unwrap(), Value::Bool(true));
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(ev(&p("NULL AND FALSE"), &[]).unwrap(), Value::Bool(false));
        assert_eq!(ev(&p("NULL AND TRUE"), &[]).unwrap(), Value::Empty);
        assert_eq!(ev(&p("NULL OR TRUE"), &[]).unwrap(), Value::Bool(true));
        assert_eq!(ev(&p("NULL OR FALSE"), &[]).unwrap(), Value::Empty);
        assert_eq!(ev(&p("NOT NULL"), &[]).unwrap(), Value::Empty);
    }

    #[test]
    fn comparisons() {
        assert_eq!(ev(&p("2 > 1"), &[]).unwrap(), Value::Bool(true));
        assert_eq!(ev(&p("2 = 2.0"), &[]).unwrap(), Value::Bool(true));
        assert_eq!(ev(&p("'abc' < 'abd'"), &[]).unwrap(), Value::Bool(true));
        assert_eq!(
            ev(&p("'A' = 'a'"), &[]).unwrap(),
            Value::Bool(false),
            "case-sensitive"
        );
        assert!(ev(&p("'a' > 1"), &[]).is_err(), "mixed types error");
    }

    #[test]
    fn column_resolution() {
        let row = vec![Value::Int(10), Value::text("x")];
        assert_eq!(ev(&p("a + 1"), &row).unwrap(), Value::Int(11));
        assert_eq!(ev(&p("t.a * 2"), &row).unwrap(), Value::Int(20));
        assert!(ev(&p("missing"), &row).is_err());
        assert!(ev(&p("u.a"), &row).is_err());
    }

    #[test]
    fn ambiguity_detected() {
        let cols = vec![ColInfo::new(Some("t"), "x"), ColInfo::new(Some("u"), "x")];
        assert!(bind(&p("x"), &cols, None, &NoSheet).is_err());
        assert!(bind(&p("t.x"), &cols, None, &NoSheet).is_ok());
    }

    #[test]
    fn in_between_like() {
        assert_eq!(ev(&p("2 IN (1, 2, 3)"), &[]).unwrap(), Value::Bool(true));
        assert_eq!(ev(&p("5 NOT IN (1, 2)"), &[]).unwrap(), Value::Bool(true));
        assert_eq!(ev(&p("2 IN (1, NULL)"), &[]).unwrap(), Value::Empty);
        assert_eq!(ev(&p("2 BETWEEN 1 AND 3"), &[]).unwrap(), Value::Bool(true));
        assert_eq!(
            ev(&p("0 NOT BETWEEN 1 AND 3"), &[]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(ev(&p("'hello' LIKE 'h%'"), &[]).unwrap(), Value::Bool(true));
        assert_eq!(
            ev(&p("'hello' LIKE 'H_LLO'"), &[]).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            ev(&p("'hello' NOT LIKE '%z%'"), &[]).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn like_edge_cases() {
        assert!(like_match("", ""));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "%%%"));
        assert!(like_match("a%c", "a%c"));
        assert!(!like_match("ac", "a_c"));
    }

    #[test]
    fn case_expressions() {
        assert_eq!(
            ev(&p("CASE WHEN 1 > 2 THEN 'x' ELSE 'y' END"), &[]).unwrap(),
            Value::text("y")
        );
        assert_eq!(
            ev(&p("CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END"), &[]).unwrap(),
            Value::text("two")
        );
        assert_eq!(
            ev(&p("CASE 9 WHEN 1 THEN 'one' END"), &[]).unwrap(),
            Value::Empty
        );
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(ev(&p("ABS(-3)"), &[]).unwrap(), Value::Int(3));
        assert_eq!(ev(&p("UPPER('abc')"), &[]).unwrap(), Value::text("ABC"));
        assert_eq!(ev(&p("LENGTH('héllo')"), &[]).unwrap(), Value::Int(5));
        assert_eq!(
            ev(&p("SUBSTR('hello', 2, 3)"), &[]).unwrap(),
            Value::text("ell")
        );
        assert_eq!(ev(&p("ROUND(2.567, 2)"), &[]).unwrap(), Value::Float(2.57));
        assert_eq!(ev(&p("ROUND(2.5)"), &[]).unwrap(), Value::Int(3));
        assert_eq!(
            ev(&p("COALESCE(NULL, NULL, 7)"), &[]).unwrap(),
            Value::Int(7)
        );
        assert_eq!(ev(&p("NULLIF(3, 3)"), &[]).unwrap(), Value::Empty);
        assert_eq!(
            ev(&p("CONCAT('a', 1, 'b')"), &[]).unwrap(),
            Value::text("a1b")
        );
        assert_eq!(ev(&p("CAST('12' AS INT)"), &[]).unwrap(), Value::Int(12));
        assert!(ev(&p("NOSUCHFN(1)"), &[]).is_err());
    }

    #[test]
    fn concat_operator_null() {
        assert_eq!(ev(&p("'a' || 'b'"), &[]).unwrap(), Value::text("ab"));
        assert_eq!(ev(&p("'a' || NULL"), &[]).unwrap(), Value::Empty);
        assert_eq!(ev(&p("1 || 2"), &[]).unwrap(), Value::text("12"));
    }

    #[test]
    fn aggregates_rejected_without_context() {
        assert!(bind(&p("SUM(a)"), &cols(), None, &NoSheet).is_err());
    }

    #[test]
    fn rangevalue_needs_resolver() {
        assert!(bind(&p("RANGEVALUE(B1)"), &cols(), None, &NoSheet).is_err());
    }
}
