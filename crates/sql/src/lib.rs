//! The SQL front end (paper §2.2, "Query Processing").
//!
//! DataSpread exposes the relational side of the system through a SQL dialect
//! extended with two positional constructs: `RANGEVALUE('B1')` reads a scalar
//! from the sheet, `RANGETABLE('A1:D100')` turns a region into a relation.
//! This crate owns everything up to (but not including) execution:
//!
//! * [`token`] — the hand-written lexer.
//! * [`parser`] — recursive-descent parsing into the [`ast`] types.
//! * [`expr`] — name resolution and per-row evaluation of bound expressions,
//!   with SQL NULL semantics (distinct from the spreadsheet's).
//! * [`planner`] — syntactic planning services over bound expressions
//!   (conjunction splitting, column analysis, equi-join key extraction) and
//!   the hashable value keys behind the engine's hash operators.
//! * [`resolver`] — the [`SheetResolver`] trait through which positional
//!   references reach a live workbook; the `dataspread` engine crate provides
//!   the real implementation, [`resolver::StaticSheet`] a test double.
//!
//! Execution lives in the `dataspread` engine crate, which binds this front
//! end to the relational storage manager and the interface manager.

pub mod ast;
pub mod expr;
pub mod parser;
pub mod planner;
pub mod resolver;
pub mod token;

pub use ast::{Expr, InsertSource, SelectStmt, Statement, TableExpr};
pub use expr::{bind, eval, BExpr, ColInfo};
pub use parser::{parse_statement, parse_statements};
pub use resolver::{NoSheet, SheetResolver, StaticSheet};
