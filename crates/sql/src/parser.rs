//! Recursive-descent SQL parser.

use dataspread_types::{DataType, DsError, DsResult, Value};

use crate::ast::*;
use crate::token::{tokenize, Token};

/// Words that terminate an implicit alias position.
const RESERVED: &[&str] = &[
    "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "OFFSET", "ON", "JOIN", "INNER", "LEFT", "RIGHT",
    "OUTER", "CROSS", "NATURAL", "UNION", "SET", "VALUES", "AS", "FROM", "SELECT", "AND", "OR",
    "NOT", "WHEN", "THEN", "ELSE", "END", "ASC", "DESC",
];

/// Parse a single SQL statement (a trailing `;` is allowed).
pub fn parse_statement(sql: &str) -> DsResult<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.statement()?;
    p.eat_token(&Token::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a `;`-separated script.
pub fn parse_statements(sql: &str) -> DsResult<Vec<Statement>> {
    let mut p = Parser::new(sql)?;
    let mut out = Vec::new();
    loop {
        while p.eat_token(&Token::Semicolon) {}
        if p.at_eof() {
            break;
        }
        out.push(p.statement()?);
        if !p.eat_token(&Token::Semicolon) {
            break;
        }
    }
    p.expect_eof()?;
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> DsResult<Self> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
        })
    }

    // ---- token helpers ------------------------------------------------------

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek2(&self) -> &Token {
        self.tokens.get(self.pos + 1).unwrap_or(&Token::Eof)
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Token::Eof)
    }

    fn expect_eof(&self) -> DsResult<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(DsError::Parse(format!(
                "unexpected trailing input: {:?}",
                self.peek()
            )))
        }
    }

    fn eat_token(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, t: &Token) -> DsResult<()> {
        if self.eat_token(t) {
            Ok(())
        } else {
            Err(DsError::Parse(format!(
                "expected {:?}, found {:?}",
                t,
                self.peek()
            )))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> DsResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(DsError::Parse(format!(
                "expected `{kw}`, found {:?}",
                self.peek()
            )))
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().is_kw(kw)
    }

    /// An identifier (unquoted or quoted).
    fn ident(&mut self) -> DsResult<String> {
        match self.next() {
            Token::Ident(s) => Ok(s),
            Token::QuotedIdent(s) => Ok(s),
            other => Err(DsError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    /// An identifier usable as an implicit alias (not a reserved word).
    fn try_alias(&mut self) -> Option<String> {
        if self.eat_kw("AS") {
            return self.ident().ok();
        }
        match self.peek() {
            Token::Ident(s) if !RESERVED.iter().any(|r| s.eq_ignore_ascii_case(r)) => {
                let s = s.clone();
                self.next();
                Some(s)
            }
            Token::QuotedIdent(s) => {
                let s = s.clone();
                self.next();
                Some(s)
            }
            _ => None,
        }
    }

    // ---- statements -----------------------------------------------------------

    fn statement(&mut self) -> DsResult<Statement> {
        if self.peek_kw("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("DELETE") {
            return self.delete();
        }
        if self.eat_kw("CREATE") {
            return self.create_table();
        }
        if self.eat_kw("DROP") {
            return self.drop_table();
        }
        if self.eat_kw("ALTER") {
            return self.alter_table();
        }
        if self.eat_kw("EXPLAIN") {
            let analyze = self.eat_kw("ANALYZE");
            if !self.peek_kw("SELECT") {
                return Err(DsError::Parse(format!(
                    "EXPLAIN{} supports SELECT statements, found {:?}",
                    if analyze { " ANALYZE" } else { "" },
                    self.peek()
                )));
            }
            let sel = self.select()?;
            return Ok(if analyze {
                Statement::ExplainAnalyze(sel)
            } else {
                Statement::Explain(sel)
            });
        }
        if self.eat_kw("ANALYZE") {
            let table = match self.peek() {
                Token::Ident(_) | Token::QuotedIdent(_) => Some(self.ident()?),
                _ => None,
            };
            return Ok(Statement::Analyze { table });
        }
        Err(DsError::Parse(format!(
            "expected a statement, found {:?}",
            self.peek()
        )))
    }

    fn select(&mut self) -> DsResult<SelectStmt> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        if !distinct {
            self.eat_kw("ALL");
        }
        let mut projection = Vec::new();
        loop {
            projection.push(self.select_item()?);
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        let from = if self.eat_kw("FROM") {
            Some(self.table_expr()?)
        } else {
            None
        };
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.expr()?;
                let asc = if self.eat_kw("DESC") {
                    false
                } else {
                    self.eat_kw("ASC");
                    true
                };
                order_by.push(OrderItem { expr, asc });
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        if self.eat_kw("LIMIT") {
            limit = Some(self.expr()?);
            if self.eat_kw("OFFSET") {
                offset = Some(self.expr()?);
            }
        } else if self.eat_kw("OFFSET") {
            offset = Some(self.expr()?);
        }
        Ok(SelectStmt {
            distinct,
            projection,
            from,
            filter,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn select_item(&mut self) -> DsResult<SelectItem> {
        if self.eat_token(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `t.*`
        if let (Token::Ident(t), Token::Dot) = (self.peek().clone(), self.peek2().clone()) {
            if matches!(self.tokens.get(self.pos + 2), Some(Token::Star)) {
                self.next();
                self.next();
                self.next();
                return Ok(SelectItem::QualifiedWildcard(t));
            }
        }
        let expr = self.expr()?;
        let alias = self.try_alias();
        Ok(SelectItem::Expr { expr, alias })
    }

    // ---- FROM clause -------------------------------------------------------------

    fn table_expr(&mut self) -> DsResult<TableExpr> {
        let mut left = self.table_primary()?;
        loop {
            let natural = self.peek_kw("NATURAL");
            let mut look = self.pos + if natural { 1 } else { 0 };
            let kind = match &self.tokens[look.min(self.tokens.len() - 1)] {
                t if t.is_kw("JOIN") => Some(JoinKind::Inner),
                t if t.is_kw("INNER") => {
                    look += 1;
                    Some(JoinKind::Inner)
                }
                t if t.is_kw("LEFT") => {
                    look += 1;
                    if self.tokens.get(look).is_some_and(|t| t.is_kw("OUTER")) {
                        look += 1;
                    }
                    Some(JoinKind::Left)
                }
                t if t.is_kw("CROSS") => {
                    look += 1;
                    Some(JoinKind::Cross)
                }
                _ => None,
            };
            let Some(kind) = kind else { break };
            if !self.tokens.get(look).is_some_and(|t| t.is_kw("JOIN")) {
                break;
            }
            self.pos = look + 1; // consume through JOIN
            let right = self.table_primary()?;
            let constraint = if natural {
                JoinConstraint::Natural
            } else if self.eat_kw("ON") {
                JoinConstraint::On(self.expr()?)
            } else if kind == JoinKind::Cross {
                JoinConstraint::None
            } else {
                return Err(DsError::Parse(
                    "JOIN requires ON (or use NATURAL/CROSS)".into(),
                ));
            };
            left = TableExpr::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                constraint,
            };
        }
        Ok(left)
    }

    fn table_primary(&mut self) -> DsResult<TableExpr> {
        if self.peek_kw("RANGETABLE") {
            self.next();
            self.expect_token(&Token::LParen)?;
            let range = self.range_text()?;
            self.expect_token(&Token::RParen)?;
            let alias = self.try_alias();
            return Ok(TableExpr::RangeTable { range, alias });
        }
        if self.eat_token(&Token::LParen) {
            if self.peek_kw("SELECT") {
                let query = self.select()?;
                self.expect_token(&Token::RParen)?;
                let alias = self
                    .try_alias()
                    .ok_or_else(|| DsError::Parse("a subquery in FROM needs an alias".into()))?;
                return Ok(TableExpr::Subquery {
                    query: Box::new(query),
                    alias,
                });
            }
            let inner = self.table_expr()?;
            self.expect_token(&Token::RParen)?;
            return Ok(inner);
        }
        let name = self.ident()?;
        let alias = self.try_alias();
        Ok(TableExpr::Named { name, alias })
    }

    /// The argument of RANGEVALUE/RANGETABLE: a string literal, or raw
    /// A1-notation tokens (`B1`, `A1:D100`).
    fn range_text(&mut self) -> DsResult<String> {
        match self.peek().clone() {
            Token::Str(s) => {
                self.next();
                Ok(s)
            }
            Token::Ident(a) => {
                self.next();
                if self.eat_token(&Token::Colon) {
                    let b = match self.next() {
                        Token::Ident(b) => b,
                        other => {
                            return Err(DsError::Parse(format!(
                                "expected range end, found {other:?}"
                            )))
                        }
                    };
                    Ok(format!("{a}:{b}"))
                } else {
                    Ok(a)
                }
            }
            other => Err(DsError::Parse(format!("expected a range, found {other:?}"))),
        }
    }

    // ---- DML / DDL -------------------------------------------------------------------

    fn insert(&mut self) -> DsResult<Statement> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let mut columns = None;
        if self.eat_token(&Token::LParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
            columns = Some(cols);
        }
        let source = if self.eat_kw("VALUES") {
            let mut tuples = Vec::new();
            loop {
                self.expect_token(&Token::LParen)?;
                let mut vals = Vec::new();
                loop {
                    vals.push(self.expr()?);
                    if !self.eat_token(&Token::Comma) {
                        break;
                    }
                }
                self.expect_token(&Token::RParen)?;
                tuples.push(vals);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            InsertSource::Values(tuples)
        } else if self.peek_kw("SELECT") {
            InsertSource::Select(Box::new(self.select()?))
        } else {
            return Err(DsError::Parse(
                "expected VALUES or SELECT after INSERT".into(),
            ));
        };
        Ok(Statement::Insert {
            table,
            columns,
            source,
        })
    }

    fn update(&mut self) -> DsResult<Statement> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_token(&Token::Eq)?;
            let e = self.expr()?;
            sets.push((col, e));
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            filter,
        })
    }

    fn delete(&mut self) -> DsResult<Statement> {
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let filter = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, filter })
    }

    fn create_table(&mut self) -> DsResult<Statement> {
        self.expect_kw("TABLE")?;
        let if_not_exists = if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        self.expect_token(&Token::LParen)?;
        let mut columns: Vec<ColumnSpec> = Vec::new();
        loop {
            if self.peek_kw("PRIMARY") {
                self.next();
                self.expect_kw("KEY")?;
                self.expect_token(&Token::LParen)?;
                loop {
                    let c = self.ident()?;
                    match columns.iter_mut().find(|s| s.name.eq_ignore_ascii_case(&c)) {
                        Some(spec) => spec.primary_key = true,
                        None => {
                            return Err(DsError::Parse(format!(
                                "PRIMARY KEY references unknown column `{c}`"
                            )))
                        }
                    }
                    if !self.eat_token(&Token::Comma) {
                        break;
                    }
                }
                self.expect_token(&Token::RParen)?;
            } else {
                columns.push(self.column_spec()?);
            }
            if !self.eat_token(&Token::Comma) {
                break;
            }
        }
        self.expect_token(&Token::RParen)?;
        Ok(Statement::CreateTable {
            name,
            columns,
            if_not_exists,
        })
    }

    fn column_spec(&mut self) -> DsResult<ColumnSpec> {
        let name = self.ident()?;
        let type_name = self.ident()?;
        let dtype = DataType::parse_sql(&type_name)
            .ok_or_else(|| DsError::Parse(format!("unknown type `{type_name}`")))?;
        let mut spec = ColumnSpec {
            name,
            dtype,
            not_null: false,
            primary_key: false,
        };
        loop {
            if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                spec.not_null = true;
            } else if self.eat_kw("PRIMARY") {
                self.expect_kw("KEY")?;
                spec.primary_key = true;
            } else {
                break;
            }
        }
        Ok(spec)
    }

    fn drop_table(&mut self) -> DsResult<Statement> {
        self.expect_kw("TABLE")?;
        let if_exists = if self.eat_kw("IF") {
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        Ok(Statement::DropTable { name, if_exists })
    }

    fn alter_table(&mut self) -> DsResult<Statement> {
        self.expect_kw("TABLE")?;
        let name = self.ident()?;
        let action = if self.eat_kw("ADD") {
            self.eat_kw("COLUMN");
            let spec = self.column_spec()?;
            let default = if self.eat_kw("DEFAULT") {
                Some(self.expr()?)
            } else {
                None
            };
            AlterAction::AddColumn { spec, default }
        } else if self.eat_kw("DROP") {
            self.eat_kw("COLUMN");
            AlterAction::DropColumn(self.ident()?)
        } else if self.eat_kw("RENAME") {
            self.eat_kw("COLUMN");
            let from = self.ident()?;
            self.expect_kw("TO")?;
            let to = self.ident()?;
            AlterAction::RenameColumn { from, to }
        } else {
            return Err(DsError::Parse(format!(
                "expected ADD/DROP/RENAME after ALTER TABLE, found {:?}",
                self.peek()
            )));
        };
        Ok(Statement::AlterTable { name, action })
    }

    // ---- expressions ---------------------------------------------------------------

    pub(crate) fn expr(&mut self) -> DsResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> DsResult<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> DsResult<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> DsResult<Expr> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(inner),
            });
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> DsResult<Expr> {
        let left = self.add_expr()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] IN / BETWEEN / LIKE
        let negated = if self.peek_kw("NOT")
            && (self.peek2().is_kw("IN")
                || self.peek2().is_kw("BETWEEN")
                || self.peek2().is_kw("LIKE"))
        {
            self.next();
            true
        } else {
            false
        };
        if self.eat_kw("IN") {
            self.expect_token(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_token(&Token::Comma) {
                    break;
                }
            }
            self.expect_token(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.add_expr()?;
            self.expect_kw("AND")?;
            let high = self.add_expr()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = self.add_expr()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
            });
        }
        if negated {
            return Err(DsError::Parse("dangling NOT".into()));
        }
        let op = match self.peek() {
            Token::Eq => BinOp::Eq,
            Token::NotEq => BinOp::NotEq,
            Token::Lt => BinOp::Lt,
            Token::LtEq => BinOp::LtEq,
            Token::Gt => BinOp::Gt,
            Token::GtEq => BinOp::GtEq,
            _ => return Ok(left),
        };
        self.next();
        let right = self.add_expr()?;
        Ok(Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        })
    }

    fn add_expr(&mut self) -> DsResult<Expr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                Token::Concat => BinOp::Concat,
                _ => break,
            };
            self.next();
            let right = self.mul_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> DsResult<Expr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Percent => BinOp::Mod,
                _ => break,
            };
            self.next();
            let right = self.unary_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> DsResult<Expr> {
        if self.eat_token(&Token::Minus) {
            let inner = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                expr: Box::new(inner),
            });
        }
        if self.eat_token(&Token::Plus) {
            return self.unary_expr();
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> DsResult<Expr> {
        match self.peek().clone() {
            Token::Int(v) => {
                self.next();
                Ok(Expr::Literal(Value::Int(v)))
            }
            Token::Float(v) => {
                self.next();
                Ok(Expr::Literal(Value::Float(v)))
            }
            Token::Str(s) => {
                self.next();
                Ok(Expr::Literal(Value::Text(s)))
            }
            Token::LParen => {
                self.next();
                let e = self.expr()?;
                self.expect_token(&Token::RParen)?;
                Ok(e)
            }
            Token::QuotedIdent(name) => {
                self.next();
                if self.eat_token(&Token::Dot) {
                    let col = self.ident()?;
                    Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    })
                } else {
                    Ok(Expr::Column { table: None, name })
                }
            }
            Token::Ident(word) => {
                // Keyword-literals first.
                if word.eq_ignore_ascii_case("TRUE") {
                    self.next();
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if word.eq_ignore_ascii_case("FALSE") {
                    self.next();
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                if word.eq_ignore_ascii_case("NULL") {
                    self.next();
                    return Ok(Expr::Literal(Value::Empty));
                }
                if word.eq_ignore_ascii_case("CASE") {
                    return self.case_expr();
                }
                if word.eq_ignore_ascii_case("CAST") {
                    self.next();
                    self.expect_token(&Token::LParen)?;
                    let e = self.expr()?;
                    self.expect_kw("AS")?;
                    let tname = self.ident()?;
                    let dtype = DataType::parse_sql(&tname)
                        .ok_or_else(|| DsError::Parse(format!("unknown type `{tname}`")))?;
                    self.expect_token(&Token::RParen)?;
                    return Ok(Expr::Cast {
                        expr: Box::new(e),
                        dtype,
                    });
                }
                if word.eq_ignore_ascii_case("RANGEVALUE") {
                    self.next();
                    self.expect_token(&Token::LParen)?;
                    let r = self.range_text()?;
                    self.expect_token(&Token::RParen)?;
                    return Ok(Expr::RangeValue(r));
                }
                // Function call?
                if matches!(self.peek2(), Token::LParen) {
                    self.next();
                    self.next(); // consume '('
                    let mut distinct = false;
                    let mut star = false;
                    let mut args = Vec::new();
                    if self.eat_token(&Token::RParen) {
                        // zero-arg function
                    } else if self.eat_token(&Token::Star) {
                        star = true;
                        self.expect_token(&Token::RParen)?;
                    } else {
                        distinct = self.eat_kw("DISTINCT");
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_token(&Token::Comma) {
                                break;
                            }
                        }
                        self.expect_token(&Token::RParen)?;
                    }
                    return Ok(Expr::Function {
                        name: word,
                        args,
                        distinct,
                        star,
                    });
                }
                // Column (possibly qualified).
                self.next();
                if self.eat_token(&Token::Dot) {
                    let col = self.ident()?;
                    Ok(Expr::Column {
                        table: Some(word),
                        name: col,
                    })
                } else {
                    Ok(Expr::Column {
                        table: None,
                        name: word,
                    })
                }
            }
            other => Err(DsError::Parse(format!(
                "unexpected token {other:?} in expression"
            ))),
        }
    }

    fn case_expr(&mut self) -> DsResult<Expr> {
        self.expect_kw("CASE")?;
        let operand = if !self.peek_kw("WHEN") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        let mut branches = Vec::new();
        while self.eat_kw("WHEN") {
            let w = self.expr()?;
            self.expect_kw("THEN")?;
            let t = self.expr()?;
            branches.push((w, t));
        }
        if branches.is_empty() {
            return Err(DsError::Parse("CASE needs at least one WHEN".into()));
        }
        let else_ = if self.eat_kw("ELSE") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(Expr::Case {
            operand,
            branches,
            else_,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = sel("SELECT a, b AS bee FROM t WHERE a > 1 ORDER BY b DESC LIMIT 10 OFFSET 2");
        assert_eq!(s.projection.len(), 2);
        assert!(matches!(
            &s.projection[1],
            SelectItem::Expr { alias: Some(a), .. } if a == "bee"
        ));
        assert!(s.filter.is_some());
        assert_eq!(s.order_by.len(), 1);
        assert!(!s.order_by[0].asc);
        assert_eq!(s.limit, Some(Expr::lit(10)));
        assert_eq!(s.offset, Some(Expr::lit(2)));
    }

    #[test]
    fn wildcards() {
        let s = sel("SELECT *, t.* FROM t");
        assert_eq!(s.projection[0], SelectItem::Wildcard);
        assert_eq!(s.projection[1], SelectItem::QualifiedWildcard("t".into()));
    }

    #[test]
    fn implicit_alias_not_keyword() {
        let s = sel("SELECT a x FROM t y WHERE x = 1");
        assert!(matches!(&s.projection[0], SelectItem::Expr { alias: Some(a), .. } if a == "x"));
        assert!(matches!(&s.from, Some(TableExpr::Named { alias: Some(a), .. }) if a == "y"));
    }

    #[test]
    fn join_varieties() {
        let s = sel("SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y");
        let Some(TableExpr::Join { kind, left, .. }) = &s.from else {
            panic!()
        };
        assert_eq!(*kind, JoinKind::Left);
        assert!(matches!(
            **left,
            TableExpr::Join {
                kind: JoinKind::Inner,
                ..
            }
        ));

        let s = sel("SELECT * FROM a NATURAL JOIN b");
        assert!(matches!(
            &s.from,
            Some(TableExpr::Join {
                constraint: JoinConstraint::Natural,
                ..
            })
        ));

        let s = sel("SELECT * FROM a CROSS JOIN b");
        assert!(matches!(
            &s.from,
            Some(TableExpr::Join {
                kind: JoinKind::Cross,
                constraint: JoinConstraint::None,
                ..
            })
        ));
    }

    #[test]
    fn join_requires_on() {
        assert!(parse_statement("SELECT * FROM a JOIN b").is_err());
    }

    #[test]
    fn rangetable_and_rangevalue() {
        let s = sel(
            "SELECT * FROM actors NATURAL JOIN RANGETABLE(A1:D100) r WHERE id = RANGEVALUE(B1)",
        );
        let Some(TableExpr::Join { right, .. }) = &s.from else {
            panic!()
        };
        assert!(matches!(
            &**right,
            TableExpr::RangeTable { range, alias: Some(a) } if range == "A1:D100" && a == "r"
        ));
        let mut found = false;
        if let Some(f) = &s.filter {
            let mut stack = vec![f];
            while let Some(e) = stack.pop() {
                if let Expr::RangeValue(r) = e {
                    assert_eq!(r, "B1");
                    found = true;
                }
                if let Expr::Binary { left, right, .. } = e {
                    stack.push(left);
                    stack.push(right);
                }
            }
        }
        assert!(found);
    }

    #[test]
    fn rangetable_string_arg() {
        let s = sel("SELECT * FROM RANGETABLE('Sheet2!A1:B5')");
        assert!(matches!(
            &s.from,
            Some(TableExpr::RangeTable { range, .. }) if range == "Sheet2!A1:B5"
        ));
    }

    #[test]
    fn group_by_having() {
        let s = sel("SELECT dept, AVG(score) FROM t GROUP BY dept HAVING COUNT(*) > 2");
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.as_ref().unwrap().contains_aggregate());
    }

    #[test]
    fn count_star_and_distinct() {
        let s = sel("SELECT COUNT(*), COUNT(DISTINCT x) FROM t");
        let SelectItem::Expr {
            expr: Expr::Function { star, .. },
            ..
        } = &s.projection[0]
        else {
            panic!()
        };
        assert!(*star);
        let SelectItem::Expr {
            expr: Expr::Function { distinct, .. },
            ..
        } = &s.projection[1]
        else {
            panic!()
        };
        assert!(*distinct);
    }

    #[test]
    fn expression_precedence() {
        let s = sel("SELECT 1 + 2 * 3");
        let SelectItem::Expr { expr, .. } = &s.projection[0] else {
            panic!()
        };
        // (1 + (2 * 3))
        let Expr::Binary {
            op: BinOp::Add,
            right,
            ..
        } = expr
        else {
            panic!("{expr:?}")
        };
        assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn logic_precedence() {
        let s = sel("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
        // OR(a=1, AND(b=2, c=3))
        let Some(Expr::Binary {
            op: BinOp::Or,
            right,
            ..
        }) = &s.filter
        else {
            panic!()
        };
        assert!(matches!(**right, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn in_between_like_is_null() {
        let s = sel(
            "SELECT * FROM t WHERE a IN (1,2) AND b NOT BETWEEN 1 AND 5 AND c LIKE 'x%' AND d IS NOT NULL",
        );
        let mut kinds = Vec::new();
        let mut stack = vec![s.filter.as_ref().unwrap()];
        while let Some(e) = stack.pop() {
            match e {
                Expr::Binary {
                    op: BinOp::And,
                    left,
                    right,
                } => {
                    stack.push(left);
                    stack.push(right);
                }
                Expr::InList { negated, .. } => kinds.push(format!("in{negated}")),
                Expr::Between { negated, .. } => kinds.push(format!("between{negated}")),
                Expr::Like { negated, .. } => kinds.push(format!("like{negated}")),
                Expr::IsNull { negated, .. } => kinds.push(format!("isnull{negated}")),
                _ => {}
            }
        }
        kinds.sort();
        assert_eq!(
            kinds,
            vec!["betweentrue", "infalse", "isnulltrue", "likefalse"]
        );
    }

    #[test]
    fn case_forms() {
        let s = sel("SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t");
        let SelectItem::Expr {
            expr:
                Expr::Case {
                    operand,
                    branches,
                    else_,
                },
            ..
        } = &s.projection[0]
        else {
            panic!()
        };
        assert!(operand.is_none());
        assert_eq!(branches.len(), 1);
        assert!(else_.is_some());

        let s = sel("SELECT CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t");
        let SelectItem::Expr {
            expr: Expr::Case {
                operand, branches, ..
            },
            ..
        } = &s.projection[0]
        else {
            panic!()
        };
        assert!(operand.is_some());
        assert_eq!(branches.len(), 2);
    }

    #[test]
    fn insert_forms() {
        let st = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        let Statement::Insert {
            columns: Some(cols),
            source: InsertSource::Values(v),
            ..
        } = st
        else {
            panic!()
        };
        assert_eq!(cols, vec!["a", "b"]);
        assert_eq!(v.len(), 2);

        let st = parse_statement("INSERT INTO t SELECT * FROM s").unwrap();
        assert!(matches!(
            st,
            Statement::Insert {
                source: InsertSource::Select(_),
                columns: None,
                ..
            }
        ));
    }

    #[test]
    fn update_delete() {
        let st = parse_statement("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3").unwrap();
        let Statement::Update { sets, filter, .. } = st else {
            panic!()
        };
        assert_eq!(sets.len(), 2);
        assert!(filter.is_some());

        let st = parse_statement("DELETE FROM t WHERE a < 0").unwrap();
        assert!(matches!(
            st,
            Statement::Delete {
                filter: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn create_table_forms() {
        let st = parse_statement(
            "CREATE TABLE IF NOT EXISTS t (id INT PRIMARY KEY, name TEXT NOT NULL, score REAL)",
        )
        .unwrap();
        let Statement::CreateTable {
            columns,
            if_not_exists,
            ..
        } = st
        else {
            panic!()
        };
        assert!(if_not_exists);
        assert_eq!(columns.len(), 3);
        assert!(columns[0].primary_key);
        assert!(columns[1].not_null);

        let st = parse_statement("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))").unwrap();
        let Statement::CreateTable { columns, .. } = st else {
            panic!()
        };
        assert!(columns[0].primary_key && columns[1].primary_key);
    }

    #[test]
    fn alter_table_forms() {
        let st = parse_statement("ALTER TABLE t ADD COLUMN x INT DEFAULT 0").unwrap();
        assert!(matches!(
            st,
            Statement::AlterTable {
                action: AlterAction::AddColumn {
                    default: Some(_),
                    ..
                },
                ..
            }
        ));
        let st = parse_statement("ALTER TABLE t DROP COLUMN x").unwrap();
        assert!(matches!(
            st,
            Statement::AlterTable {
                action: AlterAction::DropColumn(_),
                ..
            }
        ));
        let st = parse_statement("ALTER TABLE t RENAME COLUMN x TO y").unwrap();
        assert!(matches!(
            st,
            Statement::AlterTable {
                action: AlterAction::RenameColumn { .. },
                ..
            }
        ));
    }

    #[test]
    fn multi_statements() {
        let v =
            parse_statements("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn garbage_rejected() {
        assert!(parse_statement("SELEC * FROM t").is_err());
        assert!(parse_statement("SELECT * FROM").is_err());
        assert!(parse_statement("SELECT * FROM t extra garbage here").is_err());
        assert!(parse_statement("").is_err());
    }

    #[test]
    fn subquery_in_from() {
        let s = sel("SELECT x FROM (SELECT a AS x FROM t) sub WHERE x > 1");
        assert!(matches!(&s.from, Some(TableExpr::Subquery { alias, .. }) if alias == "sub"));
    }

    #[test]
    fn explain_wraps_select() {
        let st = parse_statement("EXPLAIN SELECT a FROM t JOIN u ON t.k = u.k").unwrap();
        let Statement::Explain(sel) = st else {
            panic!("expected Explain, got {st:?}");
        };
        assert!(matches!(sel.from, Some(TableExpr::Join { .. })));
    }

    #[test]
    fn explain_rejects_non_select() {
        assert!(parse_statement("EXPLAIN INSERT INTO t VALUES (1)").is_err());
        assert!(parse_statement("EXPLAIN").is_err());
    }

    #[test]
    fn explain_analyze_wraps_select() {
        let st = parse_statement("EXPLAIN ANALYZE SELECT a FROM t").unwrap();
        let Statement::ExplainAnalyze(sel) = st else {
            panic!("expected ExplainAnalyze, got {st:?}");
        };
        assert!(sel.from.is_some());
        assert!(parse_statement("EXPLAIN ANALYZE INSERT INTO t VALUES (1)").is_err());
    }

    #[test]
    fn analyze_with_and_without_table() {
        assert_eq!(
            parse_statement("ANALYZE t").unwrap(),
            Statement::Analyze {
                table: Some("t".into())
            }
        );
        assert_eq!(
            parse_statement("ANALYZE").unwrap(),
            Statement::Analyze { table: None }
        );
    }
}
