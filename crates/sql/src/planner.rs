//! Planning helpers over *bound* expressions, plus the hashable value key
//! the executor's hash operators are built on.
//!
//! The SQL crate stays execution-free (see the crate docs), but the engine's
//! planner needs a handful of purely syntactic services — splitting a `WHERE`
//! conjunction, asking which columns a bound predicate touches, rebasing
//! column indices onto a child relation, and recognizing equi-join keys.
//! Those live here so the engine's operator code stays about *operators*.
//!
//! ## Hash-key semantics ([`HKey`] / [`join_key`])
//!
//! `Value` is not `Eq + Hash` (floats), and SQL equality unifies `Int` with
//! `Float`, so hash-based DISTINCT / GROUP BY / join need a normalized
//! stand-in:
//!
//! * [`HKey::of`] mirrors [`Value::sql_eq`] (the grouping relation —
//!   `NULL` groups with `NULL`): numeric values holding an exact integer
//!   collapse to `HKey::Int`, `-0.0` to `0.0`. Two caveats, both far outside
//!   realistic spreadsheet data: `NaN` keys hash equal (where `sql_eq` says
//!   unequal, so `NaN` rows now deduplicate), and integers beyond 2⁵³ keep
//!   exact identity even though `sql_eq`'s through-`f64` comparison is not
//!   transitive there.
//! * [`join_key`] is the *bucket* key for hash joins: every numeric maps to
//!   its (normalized) `f64` bit pattern, so any `sql_compare`-equal pair is
//!   guaranteed to land in the same bucket. The image is lossy above 2⁵³,
//!   which is why the join operator re-verifies every candidate pair with
//!   `sql_compare` before emitting — bucketing is a prefilter, never the
//!   match predicate. `NULL` returns `None`: a NULL key can never
//!   equi-match.

use std::collections::HashSet;

use dataspread_types::{CellError, Value};

use crate::ast::BinOp;
use crate::expr::BExpr;

// ---- conjunctions --------------------------------------------------------

/// Split a bound predicate into its `AND`-conjuncts, in evaluation order.
///
/// A row passes the original predicate (`truth == Some(true)`) iff it passes
/// every conjunct, so a filter may apply them independently. (Short-circuit
/// *error* behaviour is not preserved: a conjunct that the original
/// evaluation would have skipped may now run — standard SQL latitude.)
pub fn split_conjuncts(e: BExpr) -> Vec<BExpr> {
    fn rec(e: BExpr, out: &mut Vec<BExpr>) {
        match e {
            BExpr::Binary {
                left,
                op: BinOp::And,
                right,
            } => {
                rec(*left, out);
                rec(*right, out);
            }
            other => out.push(other),
        }
    }
    let mut out = Vec::new();
    rec(e, &mut out);
    out
}

// ---- column analysis -----------------------------------------------------

/// Add every column index referenced by `e` to `out`.
pub fn collect_cols(e: &BExpr, out: &mut HashSet<usize>) {
    visit_exprs(e, &mut |b| {
        if let BExpr::Col(i) = b {
            out.insert(*i);
        }
    });
}

/// The column indices referenced by `e`.
pub fn cols_of(e: &BExpr) -> HashSet<usize> {
    let mut s = HashSet::new();
    collect_cols(e, &mut s);
    s
}

/// Rewrite every `Col(i)` in `e` to `Col(map(i))` — rebasing a predicate
/// bound against a parent relation onto one of its children.
pub fn remap_cols(e: &BExpr, map: &dyn Fn(usize) -> usize) -> BExpr {
    match e {
        BExpr::Col(i) => BExpr::Col(map(*i)),
        BExpr::Literal(v) => BExpr::Literal(v.clone()),
        BExpr::AggRef(i) => BExpr::AggRef(*i),
        BExpr::Unary { op, expr } => BExpr::Unary {
            op: *op,
            expr: Box::new(remap_cols(expr, map)),
        },
        BExpr::Binary { left, op, right } => BExpr::Binary {
            left: Box::new(remap_cols(left, map)),
            op: *op,
            right: Box::new(remap_cols(right, map)),
        },
        BExpr::IsNull { expr, negated } => BExpr::IsNull {
            expr: Box::new(remap_cols(expr, map)),
            negated: *negated,
        },
        BExpr::InList {
            expr,
            list,
            negated,
        } => BExpr::InList {
            expr: Box::new(remap_cols(expr, map)),
            list: list.iter().map(|e| remap_cols(e, map)).collect(),
            negated: *negated,
        },
        BExpr::Between {
            expr,
            low,
            high,
            negated,
        } => BExpr::Between {
            expr: Box::new(remap_cols(expr, map)),
            low: Box::new(remap_cols(low, map)),
            high: Box::new(remap_cols(high, map)),
            negated: *negated,
        },
        BExpr::Like {
            expr,
            pattern,
            negated,
        } => BExpr::Like {
            expr: Box::new(remap_cols(expr, map)),
            pattern: Box::new(remap_cols(pattern, map)),
            negated: *negated,
        },
        BExpr::Case {
            operand,
            branches,
            else_,
        } => BExpr::Case {
            operand: operand.as_ref().map(|e| Box::new(remap_cols(e, map))),
            branches: branches
                .iter()
                .map(|(w, t)| (remap_cols(w, map), remap_cols(t, map)))
                .collect(),
            else_: else_.as_ref().map(|e| Box::new(remap_cols(e, map))),
        },
        BExpr::ScalarFn { name, args } => BExpr::ScalarFn {
            name: name.clone(),
            args: args.iter().map(|e| remap_cols(e, map)).collect(),
        },
        BExpr::Cast { expr, dtype } => BExpr::Cast {
            expr: Box::new(remap_cols(expr, map)),
            dtype: *dtype,
        },
    }
}

fn visit_exprs(e: &BExpr, f: &mut dyn FnMut(&BExpr)) {
    f(e);
    match e {
        BExpr::Literal(_) | BExpr::Col(_) | BExpr::AggRef(_) => {}
        BExpr::Unary { expr, .. } | BExpr::IsNull { expr, .. } | BExpr::Cast { expr, .. } => {
            visit_exprs(expr, f)
        }
        BExpr::Binary { left, right, .. } => {
            visit_exprs(left, f);
            visit_exprs(right, f);
        }
        BExpr::InList { expr, list, .. } => {
            visit_exprs(expr, f);
            for e in list {
                visit_exprs(e, f);
            }
        }
        BExpr::Between {
            expr, low, high, ..
        } => {
            visit_exprs(expr, f);
            visit_exprs(low, f);
            visit_exprs(high, f);
        }
        BExpr::Like { expr, pattern, .. } => {
            visit_exprs(expr, f);
            visit_exprs(pattern, f);
        }
        BExpr::Case {
            operand,
            branches,
            else_,
        } => {
            if let Some(e) = operand {
                visit_exprs(e, f);
            }
            for (w, t) in branches {
                visit_exprs(w, f);
                visit_exprs(t, f);
            }
            if let Some(e) = else_ {
                visit_exprs(e, f);
            }
        }
        BExpr::ScalarFn { args, .. } => {
            for e in args {
                visit_exprs(e, f);
            }
        }
    }
}

// ---- equi-join key extraction --------------------------------------------

/// Equi-join keys recognized in an `ON` conjunction bound against the
/// concatenated `left ++ right` schema. `left[i] = right[i]` must compare
/// `sql_compare`-equal for a pair to join; `residual` keeps the conjuncts
/// that are not single-sided equalities (still concat-relative).
#[derive(Debug, Default)]
pub struct EquiKeys {
    /// Key expressions over the left child's columns.
    pub left: Vec<BExpr>,
    /// Key expressions over the right child's columns (indices rebased to be
    /// right-relative).
    pub right: Vec<BExpr>,
    /// Non-key conjuncts, concat-relative.
    pub residual: Vec<BExpr>,
}

/// Classify `conjuncts` (bound against `left ++ right`, where the left child
/// has `left_width` columns) into hash-join keys and residual predicate. A
/// conjunct `a = b` becomes a key pair when one operand references only left
/// columns and the other only right columns (each at least one — constant
/// comparisons are not keys).
pub fn extract_equi_keys(conjuncts: Vec<BExpr>, left_width: usize) -> EquiKeys {
    let mut out = EquiKeys::default();
    for c in conjuncts {
        if let BExpr::Binary {
            left,
            op: BinOp::Eq,
            right,
        } = &c
        {
            let lc = cols_of(left);
            let rc = cols_of(right);
            let all_left = |s: &HashSet<usize>| !s.is_empty() && s.iter().all(|&i| i < left_width);
            let all_right =
                |s: &HashSet<usize>| !s.is_empty() && s.iter().all(|&i| i >= left_width);
            if all_left(&lc) && all_right(&rc) {
                out.left.push((**left).clone());
                out.right.push(remap_cols(right, &|i| i - left_width));
                continue;
            }
            if all_right(&lc) && all_left(&rc) {
                out.left.push((**right).clone());
                out.right.push(remap_cols(left, &|i| i - left_width));
                continue;
            }
        }
        out.residual.push(c);
    }
    out
}

// ---- hashable value keys -------------------------------------------------

/// Hashable normalized stand-in for [`Value`] (see the module docs for the
/// exact relation to `sql_eq` / `sql_compare`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum HKey {
    Null,
    Bool(bool),
    /// Any numeric holding an exact integer (so `Int(2)` ≡ `Float(2.0)`).
    Int(i64),
    /// Non-integral float by normalized bit pattern.
    Float(u64),
    Text(String),
    Error(CellError),
}

impl HKey {
    /// Grouping key: `HKey::of(a) == HKey::of(b)` mirrors `a.sql_eq(&b)`
    /// (NULL groups with NULL; caveats in the module docs).
    pub fn of(v: &Value) -> HKey {
        match v {
            Value::Empty => HKey::Null,
            Value::Bool(b) => HKey::Bool(*b),
            Value::Int(i) => HKey::Int(*i),
            Value::Float(f) => {
                let f = if *f == 0.0 { 0.0 } else { *f };
                // `f as i64` is exact only on [-2⁶³, 2⁶³).
                let two63 = 2f64.powi(63);
                if f.is_nan() {
                    HKey::Float(f64::NAN.to_bits())
                } else if f.fract() == 0.0 && f >= -two63 && f < two63 {
                    HKey::Int(f as i64)
                } else {
                    HKey::Float(f.to_bits())
                }
            }
            Value::Text(s) => HKey::Text(s.clone()),
            Value::Error(e) => HKey::Error(*e),
        }
    }

    /// Grouping key of a whole row.
    pub fn of_row(row: &[Value]) -> Vec<HKey> {
        row.iter().map(HKey::of).collect()
    }
}

/// Hash-join *bucket* key: `None` for NULL (never equi-matches); numerics by
/// their normalized `f64` image so every `sql_compare`-equal pair shares a
/// bucket. Candidates must still be verified with `sql_compare`.
pub fn join_key(v: &Value) -> Option<HKey> {
    match v {
        Value::Empty => None,
        Value::Bool(b) => Some(HKey::Bool(*b)),
        Value::Int(i) => Some(HKey::Float(norm_bits(*i as f64))),
        Value::Float(f) => Some(HKey::Float(norm_bits(*f))),
        Value::Text(s) => Some(HKey::Text(s.clone())),
        Value::Error(e) => Some(HKey::Error(*e)),
    }
}

/// Bucket key of a whole key tuple; `None` when any component is NULL.
pub fn join_key_row(vals: &[Value]) -> Option<Vec<HKey>> {
    vals.iter().map(join_key).collect()
}

fn norm_bits(f: f64) -> u64 {
    let f = if f == 0.0 { 0.0 } else { f };
    if f.is_nan() {
        f64::NAN.to_bits()
    } else {
        f.to_bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{bind, ColInfo};
    use crate::parser::parse_statement;
    use crate::resolver::NoSheet;

    fn parse_expr(sql_expr: &str) -> crate::ast::Expr {
        match parse_statement(&format!("SELECT {sql_expr}")).unwrap() {
            crate::ast::Statement::Select(s) => match s.projection.into_iter().next().unwrap() {
                crate::ast::SelectItem::Expr { expr, .. } => expr,
                _ => panic!(),
            },
            _ => panic!(),
        }
    }

    fn cols4() -> Vec<ColInfo> {
        vec![
            ColInfo::new(Some("l"), "a"),
            ColInfo::new(Some("l"), "b"),
            ColInfo::new(Some("r"), "c"),
            ColInfo::new(Some("r"), "d"),
        ]
    }

    fn b(sql_expr: &str) -> BExpr {
        bind(&parse_expr(sql_expr), &cols4(), None, &NoSheet).unwrap()
    }

    #[test]
    fn conjunction_splitting() {
        let parts = split_conjuncts(b("a = 1 AND b > 2 AND (c < 3 OR d = 4)"));
        assert_eq!(parts.len(), 3);
        assert_eq!(split_conjuncts(b("a = 1 OR b = 2")).len(), 1);
    }

    #[test]
    fn column_collection_and_remap() {
        let e = b("a + c * 2");
        let mut s: HashSet<usize> = HashSet::new();
        collect_cols(&e, &mut s);
        assert_eq!(s, HashSet::from([0, 2]));
        let shifted = remap_cols(&e, &|i| i + 10);
        assert_eq!(cols_of(&shifted), HashSet::from([10, 12]));
    }

    #[test]
    fn equi_key_extraction() {
        // a,b are left (width 2); c,d are right.
        let keys = extract_equi_keys(split_conjuncts(b("a = c AND d = b AND a > 1 AND c = 1")), 2);
        assert_eq!(keys.left.len(), 2, "two equi pairs");
        assert_eq!(keys.residual.len(), 2, "single-sided / constant conjuncts");
        // Right-side keys are rebased to right-relative indices.
        assert_eq!(cols_of(&keys.right[0]), HashSet::from([0]));
        assert_eq!(cols_of(&keys.right[1]), HashSet::from([1]));
    }

    #[test]
    fn hkey_mirrors_sql_eq() {
        let pairs = [
            (Value::Int(2), Value::Float(2.0), true),
            (Value::Float(0.0), Value::Float(-0.0), true),
            (Value::Int(2), Value::Int(3), false),
            (Value::Float(2.5), Value::Float(2.5), true),
            (Value::Int(1), Value::text("1"), false),
            (Value::Empty, Value::Empty, true),
            (Value::Bool(true), Value::Int(1), false),
        ];
        for (a, bb, eq) in pairs {
            assert_eq!(HKey::of(&a) == HKey::of(&bb), eq, "{a:?} vs {bb:?}");
            assert_eq!(a.sql_eq(&bb), eq, "sql_eq agrees for {a:?} vs {bb:?}");
        }
    }

    #[test]
    fn join_key_null_is_none() {
        assert!(join_key(&Value::Empty).is_none());
        assert!(join_key_row(&[Value::Int(1), Value::Empty]).is_none());
        assert_eq!(join_key(&Value::Int(2)), join_key(&Value::Float(2.0)));
        assert_eq!(join_key(&Value::Float(0.0)), join_key(&Value::Float(-0.0)));
        assert_ne!(join_key(&Value::Int(2)), join_key(&Value::text("2")));
    }
}
