//! The bridge from SQL back into the spreadsheet.
//!
//! The paper's `RANGEVALUE`/`RANGETABLE` constructs let queries read scalars
//! and regions *from the sheet*. The query processor stays decoupled from the
//! front-end by resolving them through this trait; the `dataspread` core
//! crate implements it over the live workbook.

use dataspread_types::{DsError, DsResult, Value};

/// Resolves positional references inside SQL.
pub trait SheetResolver {
    /// The scalar at an A1 address (e.g. `B1`, `Sheet2!B1`).
    fn range_value(&self, a1: &str) -> DsResult<Value>;

    /// A region as a relation: column names + rows. How headers are inferred
    /// is the implementer's business (the workbook uses its import rules).
    fn range_table(&self, a1: &str) -> DsResult<(Vec<String>, Vec<Vec<Value>>)>;

    /// Column names of a `RANGETABLE` region. Implementations backed by a
    /// real grid should override this to read only the header row; the
    /// default materializes the whole region.
    fn range_table_names(&self, a1: &str) -> DsResult<Vec<String>> {
        Ok(self.range_table(a1)?.0)
    }

    /// The region's rows with only the columns whose indices appear in
    /// `used` guaranteed to be populated — the executor's scan-pruning hook.
    /// Implementations may leave the other slots as [`Value::Empty`] so
    /// narrower queries touch fewer storage blocks; rows keep the region's
    /// full width and order. The default reads everything.
    fn range_table_pruned(&self, a1: &str, _used: &[usize]) -> DsResult<Vec<Vec<Value>>> {
        Ok(self.range_table(a1)?.1)
    }
}

/// Resolver for contexts with no sheet attached (plain database use):
/// positional references are errors.
pub struct NoSheet;

impl SheetResolver for NoSheet {
    fn range_value(&self, a1: &str) -> DsResult<Value> {
        Err(DsError::Sql(format!(
            "RANGEVALUE({a1}) requires a spreadsheet context"
        )))
    }

    fn range_table(&self, a1: &str) -> DsResult<(Vec<String>, Vec<Vec<Value>>)> {
        Err(DsError::Sql(format!(
            "RANGETABLE({a1}) requires a spreadsheet context"
        )))
    }
}

/// A fixed in-memory resolver, handy for tests and examples.
#[derive(Default)]
pub struct StaticSheet {
    pub values: std::collections::HashMap<String, Value>,
    pub tables: std::collections::HashMap<String, (Vec<String>, Vec<Vec<Value>>)>,
}

impl StaticSheet {
    pub fn with_value(mut self, a1: &str, v: impl Into<Value>) -> Self {
        self.values.insert(a1.to_ascii_uppercase(), v.into());
        self
    }

    pub fn with_table(mut self, a1: &str, cols: Vec<&str>, rows: Vec<Vec<Value>>) -> Self {
        self.tables.insert(
            a1.to_ascii_uppercase(),
            (cols.into_iter().map(String::from).collect(), rows),
        );
        self
    }
}

impl SheetResolver for StaticSheet {
    fn range_value(&self, a1: &str) -> DsResult<Value> {
        self.values
            .get(&a1.to_ascii_uppercase())
            .cloned()
            .ok_or_else(|| DsError::Sql(format!("no value at {a1}")))
    }

    fn range_table(&self, a1: &str) -> DsResult<(Vec<String>, Vec<Vec<Value>>)> {
        self.tables
            .get(&a1.to_ascii_uppercase())
            .cloned()
            .ok_or_else(|| DsError::Sql(format!("no table at {a1}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nosheet_errors() {
        assert!(NoSheet.range_value("A1").is_err());
        assert!(NoSheet.range_table("A1:B2").is_err());
    }

    #[test]
    fn static_sheet_round_trip() {
        let s = StaticSheet::default().with_value("B1", 42).with_table(
            "A1:B2",
            vec!["x", "y"],
            vec![vec![Value::Int(1), Value::Int(2)]],
        );
        assert_eq!(s.range_value("b1").unwrap(), Value::Int(42));
        let (cols, rows) = s.range_table("a1:b2").unwrap();
        assert_eq!(cols, vec!["x", "y"]);
        assert_eq!(rows.len(), 1);
        assert!(s.range_value("Z9").is_err());
    }
}
