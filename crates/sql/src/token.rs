//! SQL lexer.
//!
//! Hand-written, byte-oriented, with SQL string literals (`'it''s'`),
//! case-preserving identifiers (keyword recognition happens in the parser),
//! double-quoted identifiers, and both integer and float numeric literals.

use dataspread_types::{DsError, DsResult};

#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Unquoted identifier or keyword (case preserved).
    Ident(String),
    /// Double-quoted identifier.
    QuotedIdent(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (with `''` unescaped).
    Str(String),
    // punctuation / operators
    Comma,
    LParen,
    RParen,
    Star,
    Dot,
    Semicolon,
    Colon,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Concat,
    Eof,
}

impl Token {
    /// Keyword test (case-insensitive) against an unquoted identifier.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

pub fn tokenize(input: &str) -> DsResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // line comment
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b',' => {
                out.push(Token::Comma);
                i += 1;
            }
            b'(' => {
                out.push(Token::LParen);
                i += 1;
            }
            b')' => {
                out.push(Token::RParen);
                i += 1;
            }
            b'*' => {
                out.push(Token::Star);
                i += 1;
            }
            b'.' => {
                out.push(Token::Dot);
                i += 1;
            }
            b';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            b':' => {
                out.push(Token::Colon);
                i += 1;
            }
            b'+' => {
                out.push(Token::Plus);
                i += 1;
            }
            b'-' => {
                out.push(Token::Minus);
                i += 1;
            }
            b'/' => {
                out.push(Token::Slash);
                i += 1;
            }
            b'%' => {
                out.push(Token::Percent);
                i += 1;
            }
            b'=' => {
                out.push(Token::Eq);
                i += 1;
            }
            b'!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                out.push(Token::NotEq);
                i += 2;
            }
            b'<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::LtEq);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    out.push(Token::NotEq);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    out.push(Token::GtEq);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            b'|' if i + 1 < bytes.len() && bytes[i + 1] == b'|' => {
                out.push(Token::Concat);
                i += 2;
            }
            b'\'' => {
                // String literal with '' escape.
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(DsError::Parse("unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] == b'\'' {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Copy the whole UTF-8 char.
                        let ch_len = utf8_len(bytes[i]);
                        s.push_str(
                            std::str::from_utf8(&bytes[i..i + ch_len])
                                .map_err(|_| DsError::Parse("invalid utf8 in string".into()))?,
                        );
                        i += ch_len;
                    }
                }
                out.push(Token::Str(s));
            }
            b'"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(DsError::Parse("unterminated quoted identifier".into()));
                    }
                    if bytes[i] == b'"' {
                        i += 1;
                        break;
                    }
                    let ch_len = utf8_len(bytes[i]);
                    s.push_str(
                        std::str::from_utf8(&bytes[i..i + ch_len])
                            .map_err(|_| DsError::Parse("invalid utf8 in identifier".into()))?,
                    );
                    i += ch_len;
                }
                out.push(Token::QuotedIdent(s));
            }
            b'0'..=b'9' => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && i + 1 < bytes.len()
                    && bytes[i + 1].is_ascii_digit()
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = std::str::from_utf8(&bytes[start..i]).unwrap();
                if is_float {
                    let f: f64 = text
                        .parse()
                        .map_err(|_| DsError::Parse(format!("bad numeric literal `{text}`")))?;
                    out.push(Token::Float(f));
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => out.push(Token::Int(v)),
                        Err(_) => {
                            let f: f64 = text.parse().map_err(|_| {
                                DsError::Parse(format!("bad numeric literal `{text}`"))
                            })?;
                            out.push(Token::Float(f));
                        }
                    }
                }
            }
            b'A'..=b'Z' | b'a'..=b'z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'$')
                {
                    i += 1;
                }
                out.push(Token::Ident(
                    std::str::from_utf8(&bytes[start..i]).unwrap().to_string(),
                ));
            }
            other => {
                return Err(DsError::Parse(format!(
                    "unexpected character `{}` at byte {i}",
                    other as char
                )))
            }
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select_tokens() {
        let t = tokenize("SELECT a, b FROM t WHERE x >= 1.5").unwrap();
        assert_eq!(t[0], Token::Ident("SELECT".into()));
        assert_eq!(t[1], Token::Ident("a".into()));
        assert_eq!(t[2], Token::Comma);
        assert!(t.contains(&Token::GtEq));
        assert!(t.contains(&Token::Float(1.5)));
        assert_eq!(*t.last().unwrap(), Token::Eof);
    }

    #[test]
    fn string_escapes() {
        let t = tokenize("'it''s'").unwrap();
        assert_eq!(t[0], Token::Str("it's".into()));
    }

    #[test]
    fn quoted_identifier() {
        let t = tokenize("\"My Column\"").unwrap();
        assert_eq!(t[0], Token::QuotedIdent("My Column".into()));
    }

    #[test]
    fn operators() {
        let t = tokenize("<> != <= >= || a.b").unwrap();
        assert_eq!(t[0], Token::NotEq);
        assert_eq!(t[1], Token::NotEq);
        assert_eq!(t[2], Token::LtEq);
        assert_eq!(t[3], Token::GtEq);
        assert_eq!(t[4], Token::Concat);
        assert_eq!(t[6], Token::Dot);
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("SELECT 1 -- trailing\n, 2").unwrap();
        assert!(t.contains(&Token::Int(1)));
        assert!(t.contains(&Token::Int(2)));
        assert!(!t
            .iter()
            .any(|x| matches!(x, Token::Ident(s) if s == "trailing")));
    }

    #[test]
    fn numbers() {
        let t = tokenize("42 4.25 1e3 9223372036854775807").unwrap();
        assert_eq!(t[0], Token::Int(42));
        assert_eq!(t[1], Token::Float(4.25));
        assert_eq!(t[2], Token::Float(1000.0));
        assert_eq!(t[3], Token::Int(i64::MAX));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        let t = tokenize("'héllo—wörld'").unwrap();
        assert_eq!(t[0], Token::Str("héllo—wörld".into()));
    }

    #[test]
    fn kw_check_case_insensitive() {
        let t = tokenize("select").unwrap();
        assert!(t[0].is_kw("SELECT"));
        assert!(t[0].is_kw("select"));
        assert!(!t[0].is_kw("FROM"));
    }
}
