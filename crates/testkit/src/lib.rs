//! Dependency-free testing and micro-bench helpers.
//!
//! The workspace builds in hermetic environments with no access to a crates
//! registry, so the usual suspects (`proptest`, `criterion`) are replaced by
//! this small kit (substitution #4 in `DESIGN.md`):
//!
//! * [`Rng`] — a SplitMix64 PRNG with the generation helpers the property
//!   suites need. Deterministic: a failing case's seed is printed so the run
//!   can be reproduced exactly with [`replay`].
//! * [`cases`] — a fixed-count property-test driver over derived seeds.
//! * [`bench()`] — wall-clock micro-benchmark with warmup and per-iteration
//!   reporting, used by the `harness = false` bench targets.

use std::hint::black_box as bb;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// SplitMix64: tiny, fast, and plenty for test-case generation.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        lo + self.below((hi - lo) as u64) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.index(hi - lo)
    }

    pub fn i64(&mut self) -> i64 {
        self.next_u64() as i64
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform float in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    /// Random string of length `[0, max_len]` drawn from `alphabet`.
    pub fn string(&mut self, alphabet: &[char], max_len: usize) -> String {
        let len = self.index(max_len + 1);
        (0..len)
            .map(|_| alphabet[self.index(alphabet.len())])
            .collect()
    }

    /// Lowercase ASCII string of length `[min_len, max_len]`.
    pub fn lowercase(&mut self, min_len: usize, max_len: usize) -> String {
        let len = self.usize_in(min_len, max_len + 1);
        (0..len)
            .map(|_| (b'a' + self.below(26) as u8) as char)
            .collect()
    }

    /// Weighted choice: returns the index of the chosen weight.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        let mut roll = self.below(total);
        for (i, &w) in weights.iter().enumerate() {
            if roll < w as u64 {
                return i;
            }
            roll -= w as u64;
        }
        unreachable!("weights sum exceeded")
    }
}

/// Run `f` against `n` derived seeds. On a panic the offending seed is
/// printed before the panic is propagated, so the case can be replayed in
/// isolation with [`replay`].
pub fn cases(n: u64, base_seed: u64, f: impl Fn(&mut Rng)) {
    for i in 0..n {
        let seed = base_seed ^ (i.wrapping_mul(0xA076_1D64_78BD_642F));
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = Rng::new(seed);
            f(&mut rng);
        }));
        if let Err(e) = result {
            eprintln!("testkit: case {i}/{n} failed; replay with seed {seed:#x}");
            resume_unwind(e);
        }
    }
}

/// Re-run a single failing case by seed.
pub fn replay(seed: u64, f: impl FnOnce(&mut Rng)) {
    let mut rng = Rng::new(seed);
    f(&mut rng);
}

/// One benchmark measurement.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    pub iters: u64,
    pub total: Duration,
}

impl Measurement {
    pub fn per_iter_ns(&self) -> f64 {
        self.total.as_nanos() as f64 / self.iters as f64
    }
}

/// Wall-clock micro-benchmark: warm up, then run `f` until ~`target` of
/// measured time accumulates, and print ns/iter. Returns the measurement so
/// callers can compute ratios between comparison arms.
pub fn bench(name: &str, target: Duration, mut f: impl FnMut()) -> Measurement {
    // Warmup: run for ~20% of the target to populate caches/allocators.
    let warm_until = Instant::now() + target / 5;
    while Instant::now() < warm_until {
        f();
    }
    let mut iters = 0u64;
    let mut total = Duration::ZERO;
    while total < target {
        let t0 = Instant::now();
        f();
        total += t0.elapsed();
        iters += 1;
    }
    let m = Measurement { iters, total };
    println!(
        "{name:<48} {:>12.1} ns/iter ({} iters)",
        m.per_iter_ns(),
        m.iters
    );
    m
}

/// Emit one machine-readable result line for a measurement:
/// `BENCH_JSON {"bench":…,"rows":…,"ns_per_iter":…,"iters":…}`.
/// The `BENCH_JSON ` prefix lets tooling grep the JSON out of the human
/// report (`cargo bench … | grep ^BENCH_JSON | cut -d' ' -f2-`).
pub fn report_json(name: &str, rows: usize, m: &Measurement) {
    println!(
        "BENCH_JSON {{\"bench\":\"{name}\",\"rows\":{rows},\"ns_per_iter\":{:.1},\"iters\":{}}}",
        m.per_iter_ns(),
        m.iters
    );
}

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    bb(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounds_respected() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let v = r.u32_in(5, 9);
            assert!((5..9).contains(&v));
            let s = r.lowercase(1, 5);
            assert!((1..=5).contains(&s.len()));
            let f = r.f64_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn weighted_covers_all_arms() {
        let mut r = Rng::new(3);
        let mut seen = [false; 3];
        for _ in 0..300 {
            seen[r.weighted(&[1, 2, 3])] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cases_runs_requested_count() {
        let counter = std::cell::Cell::new(0u64);
        cases(25, 99, |_| counter.set(counter.get() + 1));
        assert_eq!(counter.get(), 25);
    }
}
