//! Sheet positions and formula references in A1 notation.
//!
//! Positional addressing is central to DataSpread: the paper argues that making
//! the database aware of *where* data sits on the interface ("a position gets
//! implicitly assigned to the displayed data") is what enables two-way sync and
//! constructs like `RANGEVALUE(A1)` / `RANGETABLE(A1:D100)`. Everything in this
//! module is zero-based internally; A1 notation is one-based at the surface.

use std::fmt;
use std::str::FromStr;

use crate::error::DsError;

/// Maximum row index (zero-based) a sheet may address. Matches the 2^20 rows of
/// modern spreadsheet UIs; guards against overflow in shift arithmetic.
pub const MAX_ROW: u32 = (1 << 30) - 1;
/// Maximum column index (zero-based).
pub const MAX_COL: u32 = (1 << 20) - 1;

/// Convert a zero-based column index to spreadsheet letters (0 → `A`, 25 → `Z`,
/// 26 → `AA`).
pub fn col_to_letters(mut col: u32) -> String {
    let mut buf = [0u8; 8];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'A' + (col % 26) as u8;
        if col < 26 {
            break;
        }
        col = col / 26 - 1;
    }
    // Safety not needed: bytes are ASCII by construction.
    String::from_utf8_lossy(&buf[i..]).into_owned()
}

/// Convert spreadsheet column letters to a zero-based index (`A` → 0, `AA` → 26).
/// Case-insensitive. Returns `None` for empty or non-alphabetic input, or on
/// overflow past [`MAX_COL`].
pub fn letters_to_col(s: &str) -> Option<u32> {
    if s.is_empty() {
        return None;
    }
    let mut col: u64 = 0;
    for b in s.bytes() {
        let d = match b {
            b'A'..=b'Z' => (b - b'A') as u64,
            b'a'..=b'z' => (b - b'a') as u64,
            _ => return None,
        };
        col = col * 26 + d + 1;
        if col > MAX_COL as u64 + 1 {
            return None;
        }
    }
    Some((col - 1) as u32)
}

/// A concrete cell position on a sheet: zero-based `(row, col)`.
///
/// Ordering is row-major (all of row 0, then row 1, …), matching the order in
/// which a window is painted and in which `RANGETABLE` linearizes a region.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct CellAddr {
    pub row: u32,
    pub col: u32,
}

impl CellAddr {
    pub const fn new(row: u32, col: u32) -> Self {
        CellAddr { row, col }
    }

    /// Parse strict A1 notation (`B7`, `AA12`). Rejects `$` flags — those
    /// belong to [`CellRef`].
    pub fn parse_a1(s: &str) -> Result<Self, DsError> {
        let split = s
            .bytes()
            .position(|b| b.is_ascii_digit())
            .ok_or_else(|| DsError::Parse(format!("invalid cell address `{s}`: no row digits")))?;
        if split == 0 {
            return Err(DsError::Parse(format!(
                "invalid cell address `{s}`: no column letters"
            )));
        }
        let (letters, digits) = s.split_at(split);
        let col = letters_to_col(letters)
            .ok_or_else(|| DsError::Parse(format!("invalid column letters in `{s}`")))?;
        let row1: u64 = digits
            .parse()
            .map_err(|_| DsError::Parse(format!("invalid row number in `{s}`")))?;
        if row1 == 0 || row1 > MAX_ROW as u64 + 1 {
            return Err(DsError::Parse(format!("row out of range in `{s}`")));
        }
        Ok(CellAddr::new((row1 - 1) as u32, col))
    }

    /// Format as A1 notation.
    pub fn to_a1(self) -> String {
        format!("{}{}", col_to_letters(self.col), self.row + 1)
    }

    /// Offset by a signed delta, clamping at the sheet edges. Returns `None`
    /// if the result would fall off the sheet (negative or past the maxima) —
    /// the caller turns that into `#REF!`.
    pub fn offset(self, d_row: i64, d_col: i64) -> Option<Self> {
        let r = self.row as i64 + d_row;
        let c = self.col as i64 + d_col;
        if r < 0 || c < 0 || r > MAX_ROW as i64 || c > MAX_COL as i64 {
            None
        } else {
            Some(CellAddr::new(r as u32, c as u32))
        }
    }
}

impl fmt::Display for CellAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", col_to_letters(self.col), self.row + 1)
    }
}

impl FromStr for CellAddr {
    type Err = DsError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        CellAddr::parse_a1(s)
    }
}

/// A rectangular region on a sheet, stored normalized (`start` is the top-left
/// corner, `end` the bottom-right, both inclusive).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Range {
    pub start: CellAddr,
    pub end: CellAddr,
}

impl Range {
    /// Build a range from any two corners; normalizes so `start <= end`
    /// component-wise.
    pub fn new(a: CellAddr, b: CellAddr) -> Self {
        Range {
            start: CellAddr::new(a.row.min(b.row), a.col.min(b.col)),
            end: CellAddr::new(a.row.max(b.row), a.col.max(b.col)),
        }
    }

    /// A 1×1 range covering a single cell.
    pub fn cell(a: CellAddr) -> Self {
        Range { start: a, end: a }
    }

    /// Build from zero-based row/col bounds (inclusive).
    pub fn from_bounds(row0: u32, col0: u32, row1: u32, col1: u32) -> Self {
        Range::new(CellAddr::new(row0, col0), CellAddr::new(row1, col1))
    }

    /// Parse `A1:D100` or a bare `A1` (1×1 range).
    pub fn parse_a1(s: &str) -> Result<Self, DsError> {
        match s.split_once(':') {
            Some((a, b)) => Ok(Range::new(CellAddr::parse_a1(a)?, CellAddr::parse_a1(b)?)),
            None => Ok(Range::cell(CellAddr::parse_a1(s)?)),
        }
    }

    pub fn to_a1(self) -> String {
        if self.start == self.end {
            self.start.to_a1()
        } else {
            format!("{}:{}", self.start.to_a1(), self.end.to_a1())
        }
    }

    pub fn width(&self) -> u32 {
        self.end.col - self.start.col + 1
    }

    pub fn height(&self) -> u32 {
        self.end.row - self.start.row + 1
    }

    pub fn cell_count(&self) -> u64 {
        self.width() as u64 * self.height() as u64
    }

    pub fn contains(&self, a: CellAddr) -> bool {
        a.row >= self.start.row
            && a.row <= self.end.row
            && a.col >= self.start.col
            && a.col <= self.end.col
    }

    pub fn contains_range(&self, r: &Range) -> bool {
        self.contains(r.start) && self.contains(r.end)
    }

    pub fn intersects(&self, other: &Range) -> bool {
        self.start.row <= other.end.row
            && other.start.row <= self.end.row
            && self.start.col <= other.end.col
            && other.start.col <= self.end.col
    }

    /// The overlapping region, if any.
    pub fn intersection(&self, other: &Range) -> Option<Range> {
        if !self.intersects(other) {
            return None;
        }
        Some(Range::from_bounds(
            self.start.row.max(other.start.row),
            self.start.col.max(other.start.col),
            self.end.row.min(other.end.row),
            self.end.col.min(other.end.col),
        ))
    }

    /// Smallest range covering both.
    pub fn union(&self, other: &Range) -> Range {
        Range::from_bounds(
            self.start.row.min(other.start.row),
            self.start.col.min(other.start.col),
            self.end.row.max(other.end.row),
            self.end.col.max(other.end.col),
        )
    }

    /// Row-major iterator over every cell in the range.
    pub fn iter_cells(&self) -> impl Iterator<Item = CellAddr> + '_ {
        let (r0, r1) = (self.start.row, self.end.row);
        let (c0, c1) = (self.start.col, self.end.col);
        (r0..=r1).flat_map(move |r| (c0..=c1).map(move |c| CellAddr::new(r, c)))
    }

    /// Translate the whole range; `None` if any corner falls off the sheet.
    pub fn offset(&self, d_row: i64, d_col: i64) -> Option<Range> {
        Some(Range {
            start: self.start.offset(d_row, d_col)?,
            end: self.end.offset(d_row, d_col)?,
        })
    }
}

impl fmt::Display for Range {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_a1())
    }
}

impl FromStr for Range {
    type Err = DsError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Range::parse_a1(s)
    }
}

/// Optional sheet qualifier on a reference (`Sheet2!B3`). `Current` means the
/// reference is resolved against the sheet the formula lives on.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum SheetRef {
    #[default]
    Current,
    Named(String),
}

impl SheetRef {
    pub fn name(&self) -> Option<&str> {
        match self {
            SheetRef::Current => None,
            SheetRef::Named(n) => Some(n),
        }
    }
}

/// A cell reference as written in a formula: position + absolute flags +
/// optional sheet. `$A$1` pins both axes; copy/paste shifts only relative axes.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CellRef {
    pub sheet: SheetRef,
    pub addr: CellAddr,
    pub abs_row: bool,
    pub abs_col: bool,
}

impl CellRef {
    pub fn relative(addr: CellAddr) -> Self {
        CellRef {
            sheet: SheetRef::Current,
            addr,
            abs_row: false,
            abs_col: false,
        }
    }

    pub fn absolute(addr: CellAddr) -> Self {
        CellRef {
            sheet: SheetRef::Current,
            addr,
            abs_row: true,
            abs_col: true,
        }
    }

    /// Shift for copy/paste by `(d_row, d_col)`: absolute axes stay put,
    /// relative axes move. `None` means the shifted reference fell off the
    /// sheet (→ `#REF!`).
    pub fn shifted_for_copy(&self, d_row: i64, d_col: i64) -> Option<CellRef> {
        let dr = if self.abs_row { 0 } else { d_row };
        let dc = if self.abs_col { 0 } else { d_col };
        Some(CellRef {
            addr: self.addr.offset(dr, dc)?,
            ..self.clone()
        })
    }

    /// Render with `$` flags and sheet qualifier.
    pub fn to_formula_string(&self) -> String {
        let mut s = String::new();
        if let Some(n) = self.sheet.name() {
            s.push_str(n);
            s.push('!');
        }
        if self.abs_col {
            s.push('$');
        }
        s.push_str(&col_to_letters(self.addr.col));
        if self.abs_row {
            s.push('$');
        }
        s.push_str(&(self.addr.row + 1).to_string());
        s
    }
}

impl fmt::Display for CellRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_formula_string())
    }
}

/// A range reference as written in a formula (`Sheet1!$A$1:B10`). The two
/// corners carry independent absolute flags, like real spreadsheets.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RangeRef {
    pub sheet: SheetRef,
    pub start: CellRef,
    pub end: CellRef,
}

impl RangeRef {
    pub fn new(sheet: SheetRef, start: CellRef, end: CellRef) -> Self {
        RangeRef { sheet, start, end }
    }

    /// The concrete (normalized) region this reference denotes.
    pub fn range(&self) -> Range {
        Range::new(self.start.addr, self.end.addr)
    }

    pub fn shifted_for_copy(&self, d_row: i64, d_col: i64) -> Option<RangeRef> {
        Some(RangeRef {
            sheet: self.sheet.clone(),
            start: self.start.shifted_for_copy(d_row, d_col)?,
            end: self.end.shifted_for_copy(d_row, d_col)?,
        })
    }

    pub fn to_formula_string(&self) -> String {
        let mut s = String::new();
        if let Some(n) = self.sheet.name() {
            s.push_str(n);
            s.push('!');
        }
        fn corner(s: &mut String, c: &CellRef) {
            if c.abs_col {
                s.push('$');
            }
            s.push_str(&col_to_letters(c.addr.col));
            if c.abs_row {
                s.push('$');
            }
            s.push_str(&(c.addr.row + 1).to_string());
        }
        corner(&mut s, &self.start);
        s.push(':');
        corner(&mut s, &self.end);
        s
    }
}

impl fmt::Display for RangeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_formula_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn col_letters_round_trip_small() {
        assert_eq!(col_to_letters(0), "A");
        assert_eq!(col_to_letters(25), "Z");
        assert_eq!(col_to_letters(26), "AA");
        assert_eq!(col_to_letters(27), "AB");
        assert_eq!(col_to_letters(51), "AZ");
        assert_eq!(col_to_letters(52), "BA");
        assert_eq!(col_to_letters(701), "ZZ");
        assert_eq!(col_to_letters(702), "AAA");
    }

    #[test]
    fn letters_to_col_inverse() {
        for c in [0u32, 1, 25, 26, 27, 700, 701, 702, 703, 18277, 18278] {
            assert_eq!(letters_to_col(&col_to_letters(c)), Some(c), "col {c}");
        }
    }

    #[test]
    fn letters_to_col_case_insensitive() {
        assert_eq!(letters_to_col("aa"), Some(26));
        assert_eq!(letters_to_col("Ab"), Some(27));
    }

    #[test]
    fn letters_to_col_rejects_garbage() {
        assert_eq!(letters_to_col(""), None);
        assert_eq!(letters_to_col("A1"), None);
        assert_eq!(letters_to_col("é"), None);
    }

    #[test]
    fn parse_a1_basic() {
        assert_eq!(CellAddr::parse_a1("A1").unwrap(), CellAddr::new(0, 0));
        assert_eq!(CellAddr::parse_a1("B7").unwrap(), CellAddr::new(6, 1));
        assert_eq!(CellAddr::parse_a1("AA12").unwrap(), CellAddr::new(11, 26));
    }

    #[test]
    fn parse_a1_rejects_bad_input() {
        assert!(CellAddr::parse_a1("").is_err());
        assert!(CellAddr::parse_a1("A0").is_err());
        assert!(CellAddr::parse_a1("1A").is_err());
        assert!(CellAddr::parse_a1("AB").is_err());
        assert!(CellAddr::parse_a1("$A$1").is_err());
    }

    #[test]
    fn a1_display_round_trip() {
        for (r, c) in [(0, 0), (6, 1), (11, 26), (999, 701)] {
            let a = CellAddr::new(r, c);
            assert_eq!(CellAddr::parse_a1(&a.to_a1()).unwrap(), a);
        }
    }

    #[test]
    fn addr_ordering_is_row_major() {
        let a = CellAddr::new(0, 5);
        let b = CellAddr::new(1, 0);
        assert!(a < b);
    }

    #[test]
    fn offset_clips_at_edges() {
        let a = CellAddr::new(0, 0);
        assert_eq!(a.offset(-1, 0), None);
        assert_eq!(a.offset(0, -1), None);
        assert_eq!(a.offset(3, 2), Some(CellAddr::new(3, 2)));
    }

    #[test]
    fn range_normalizes_corners() {
        let r = Range::new(CellAddr::new(5, 5), CellAddr::new(2, 7));
        assert_eq!(r.start, CellAddr::new(2, 5));
        assert_eq!(r.end, CellAddr::new(5, 7));
        assert_eq!(r.width(), 3);
        assert_eq!(r.height(), 4);
        assert_eq!(r.cell_count(), 12);
    }

    #[test]
    fn range_parse_and_display() {
        let r = Range::parse_a1("A1:D100").unwrap();
        assert_eq!(r.start, CellAddr::new(0, 0));
        assert_eq!(r.end, CellAddr::new(99, 3));
        assert_eq!(r.to_a1(), "A1:D100");
        assert_eq!(Range::parse_a1("B2").unwrap().to_a1(), "B2");
    }

    #[test]
    fn range_containment_and_intersection() {
        let r = Range::parse_a1("B2:E10").unwrap();
        assert!(r.contains(CellAddr::parse_a1("B2").unwrap()));
        assert!(r.contains(CellAddr::parse_a1("E10").unwrap()));
        assert!(!r.contains(CellAddr::parse_a1("A1").unwrap()));
        let s = Range::parse_a1("D5:G20").unwrap();
        assert!(r.intersects(&s));
        assert_eq!(r.intersection(&s).unwrap().to_a1(), "D5:E10");
        let t = Range::parse_a1("F11:G20").unwrap();
        assert!(!r.intersects(&t));
        assert_eq!(r.intersection(&t), None);
    }

    #[test]
    fn range_union_covers_both() {
        let r = Range::parse_a1("B2:C3").unwrap();
        let s = Range::parse_a1("E5:F6").unwrap();
        let u = r.union(&s);
        assert!(u.contains_range(&r) && u.contains_range(&s));
        assert_eq!(u.to_a1(), "B2:F6");
    }

    #[test]
    fn iter_cells_row_major_count() {
        let r = Range::parse_a1("A1:C2").unwrap();
        let cells: Vec<_> = r.iter_cells().collect();
        assert_eq!(cells.len(), 6);
        assert_eq!(cells[0], CellAddr::new(0, 0));
        assert_eq!(cells[1], CellAddr::new(0, 1));
        assert_eq!(cells[3], CellAddr::new(1, 0));
    }

    #[test]
    fn cellref_copy_shift_respects_absolutes() {
        let rel = CellRef::relative(CellAddr::new(1, 1));
        let shifted = rel.shifted_for_copy(2, 3).unwrap();
        assert_eq!(shifted.addr, CellAddr::new(3, 4));

        let mut half = CellRef::relative(CellAddr::new(1, 1));
        half.abs_row = true;
        let shifted = half.shifted_for_copy(2, 3).unwrap();
        assert_eq!(shifted.addr, CellAddr::new(1, 4));

        let abs = CellRef::absolute(CellAddr::new(1, 1));
        assert_eq!(
            abs.shifted_for_copy(5, 5).unwrap().addr,
            CellAddr::new(1, 1)
        );
    }

    #[test]
    fn cellref_off_sheet_is_none() {
        let rel = CellRef::relative(CellAddr::new(0, 0));
        assert!(rel.shifted_for_copy(-1, 0).is_none());
    }

    #[test]
    fn cellref_display_flags() {
        let mut r = CellRef::relative(CellAddr::new(0, 0));
        assert_eq!(r.to_formula_string(), "A1");
        r.abs_col = true;
        assert_eq!(r.to_formula_string(), "$A1");
        r.abs_row = true;
        assert_eq!(r.to_formula_string(), "$A$1");
        r.sheet = SheetRef::Named("Data".into());
        assert_eq!(r.to_formula_string(), "Data!$A$1");
    }

    #[test]
    fn rangeref_display_and_range() {
        let rr = RangeRef::new(
            SheetRef::Current,
            CellRef::relative(CellAddr::new(0, 0)),
            CellRef::absolute(CellAddr::new(9, 3)),
        );
        assert_eq!(rr.to_formula_string(), "A1:$D$10");
        assert_eq!(rr.range().to_a1(), "A1:D10");
    }
}
