//! The column-type lattice used by automatic schema inference.
//!
//! Paper §2.2 ("Data typing"): *"Spreadsheets dynamically type the data stored
//! as cells. To make this work with databases, we propose the idea of
//! automatically assigning data types within the databases based on the
//! tuples."* [`DataType::infer_column`] implements exactly that: observe the
//! values of a prospective column and pick the narrowest type that admits all
//! of them, widening along `Int → Float → Text` (with `Bool` joining anything
//! non-boolean at `Text`).

use std::fmt;

use crate::value::Value;

/// Relational column types. `Any` is the top of the lattice, used for columns
/// whose cells were all empty (no evidence either way).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DataType {
    Bool,
    Int,
    Float,
    Text,
    /// No evidence: every observed value was NULL/empty. Accepts anything.
    Any,
}

impl DataType {
    /// The type of a single value; `None` for empty/error values, which carry
    /// no type evidence.
    pub fn of(v: &Value) -> Option<DataType> {
        match v {
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Empty | Value::Error(_) => None,
        }
    }

    /// Least upper bound of two types: `Int ∨ Float = Float`, anything else
    /// mixed collapses to `Text` (the spreadsheet-faithful fallback — a column
    /// with `3` and `"abc"` exports as text).
    pub fn unify(a: DataType, b: DataType) -> DataType {
        use DataType::*;
        match (a, b) {
            (Any, x) | (x, Any) => x,
            (x, y) if x == y => x,
            (Int, Float) | (Float, Int) => Float,
            _ => Text,
        }
    }

    /// Infer the type of a column from its values, ignoring empties/errors.
    pub fn infer_column<'a>(values: impl IntoIterator<Item = &'a Value>) -> DataType {
        values
            .into_iter()
            .filter_map(DataType::of)
            .fold(DataType::Any, DataType::unify)
    }

    /// Does `v` conform to this column type? NULL is accepted everywhere
    /// (nullability is tracked separately by the schema); `Int` values are
    /// accepted by `Float` columns (widening on write).
    pub fn admits(self, v: &Value) -> bool {
        match (self, v) {
            (_, Value::Empty) => true,
            (DataType::Any, _) => !v.is_error(),
            (DataType::Bool, Value::Bool(_)) => true,
            (DataType::Int, Value::Int(_)) => true,
            (DataType::Float, Value::Int(_) | Value::Float(_)) => true,
            (DataType::Text, Value::Text(_)) => true,
            _ => false,
        }
    }

    /// Coerce a value for storage in a column of this type, widening where
    /// [`DataType::admits`] allows and converting anything to text for `Text`
    /// columns (the forgiving import path). Returns `None` when no sensible
    /// conversion exists (e.g. `"abc"` into an `Int` column).
    pub fn coerce_for_storage(self, v: Value) -> Option<Value> {
        match (self, &v) {
            (_, Value::Empty) => Some(Value::Empty),
            (_, Value::Error(_)) => None,
            (DataType::Any, _) => Some(v),
            (DataType::Bool, Value::Bool(_)) => Some(v),
            (DataType::Bool, _) => v.coerce_bool().ok().map(Value::Bool),
            (DataType::Int, Value::Int(_)) => Some(v),
            (DataType::Int, _) => v.coerce_i64().ok().map(Value::Int),
            (DataType::Float, Value::Int(i)) => Some(Value::Float(*i as f64)),
            (DataType::Float, Value::Float(_)) => Some(v),
            (DataType::Float, _) => v.coerce_f64().ok().map(Value::Float),
            (DataType::Text, Value::Text(_)) => Some(v),
            (DataType::Text, _) => Some(Value::Text(v.display_string())),
        }
    }

    /// SQL spelling, for `CREATE TABLE` round-trips and `DESCRIBE` output.
    pub fn sql_name(self) -> &'static str {
        match self {
            DataType::Bool => "BOOLEAN",
            DataType::Int => "INTEGER",
            DataType::Float => "REAL",
            DataType::Text => "TEXT",
            DataType::Any => "ANY",
        }
    }

    /// Parse a SQL type name (a few standard aliases accepted).
    pub fn parse_sql(s: &str) -> Option<DataType> {
        Some(match s.to_ascii_uppercase().as_str() {
            "BOOLEAN" | "BOOL" => DataType::Bool,
            "INTEGER" | "INT" | "BIGINT" | "SMALLINT" => DataType::Int,
            "REAL" | "FLOAT" | "DOUBLE" | "NUMERIC" | "DECIMAL" => DataType::Float,
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" => DataType::Text,
            "ANY" => DataType::Any,
            _ => return None,
        })
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_maps_value_variants() {
        assert_eq!(DataType::of(&Value::Int(1)), Some(DataType::Int));
        assert_eq!(DataType::of(&Value::Float(1.5)), Some(DataType::Float));
        assert_eq!(DataType::of(&Value::Bool(true)), Some(DataType::Bool));
        assert_eq!(DataType::of(&Value::text("x")), Some(DataType::Text));
        assert_eq!(DataType::of(&Value::Empty), None);
    }

    #[test]
    fn unify_int_float_widens() {
        assert_eq!(
            DataType::unify(DataType::Int, DataType::Float),
            DataType::Float
        );
        assert_eq!(
            DataType::unify(DataType::Float, DataType::Int),
            DataType::Float
        );
    }

    #[test]
    fn unify_mixed_collapses_to_text() {
        assert_eq!(
            DataType::unify(DataType::Int, DataType::Text),
            DataType::Text
        );
        assert_eq!(
            DataType::unify(DataType::Bool, DataType::Int),
            DataType::Text
        );
    }

    #[test]
    fn infer_column_ignores_empties() {
        let vals = [Value::Empty, Value::Int(1), Value::Int(2), Value::Empty];
        assert_eq!(DataType::infer_column(vals.iter()), DataType::Int);
    }

    #[test]
    fn infer_column_all_empty_is_any() {
        let vals = [Value::Empty, Value::Empty];
        assert_eq!(DataType::infer_column(vals.iter()), DataType::Any);
    }

    #[test]
    fn infer_column_mixed_numeric() {
        let vals = [Value::Int(1), Value::Float(2.5)];
        assert_eq!(DataType::infer_column(vals.iter()), DataType::Float);
    }

    #[test]
    fn admits_widening_and_null() {
        assert!(DataType::Float.admits(&Value::Int(3)));
        assert!(!DataType::Int.admits(&Value::Float(3.5)));
        assert!(DataType::Int.admits(&Value::Empty));
        assert!(!DataType::Int.admits(&Value::text("3")));
    }

    #[test]
    fn coerce_for_storage_widens_and_textifies() {
        assert_eq!(
            DataType::Float.coerce_for_storage(Value::Int(3)),
            Some(Value::Float(3.0))
        );
        assert_eq!(
            DataType::Text.coerce_for_storage(Value::Int(3)),
            Some(Value::text("3"))
        );
        assert_eq!(
            DataType::Int.coerce_for_storage(Value::text("12")),
            Some(Value::Int(12))
        );
        assert_eq!(DataType::Int.coerce_for_storage(Value::text("abc")), None);
        assert_eq!(
            DataType::Bool.coerce_for_storage(Value::text("TRUE")),
            Some(Value::Bool(true))
        );
    }

    #[test]
    fn sql_names_round_trip() {
        for t in [
            DataType::Bool,
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Any,
        ] {
            assert_eq!(DataType::parse_sql(t.sql_name()), Some(t));
        }
        assert_eq!(DataType::parse_sql("VARCHAR"), Some(DataType::Text));
        assert_eq!(DataType::parse_sql("BLOB"), None);
    }
}
