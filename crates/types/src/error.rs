//! The workspace-wide error type.
//!
//! Each layer of the system (storage, SQL, formula, engine, front-end) reports
//! through the same enum so errors can cross crate boundaries without
//! re-wrapping. In-cell errors ([`crate::CellError`]) are distinct: those are
//! *values* a user sees in a cell; `DsError` is for API misuse and internal
//! failures.

use std::fmt;

use crate::value::CellError;

pub type DsResult<T> = Result<T, DsError>;

/// Errors surfaced by DataSpread APIs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DsError {
    /// Lexing/parsing failures (A1 addresses, formulae, SQL).
    Parse(String),
    /// Schema violations: duplicate/unknown column, type mismatch, bad DDL.
    Schema(String),
    /// Storage-layer failures (page codec, missing row keys, capacity).
    Storage(String),
    /// SQL binding/execution failures (unknown table/column, arity, …).
    Sql(String),
    /// Compute-engine failures (scheduler misuse; cycles surface as `#CYCLE!`
    /// cell values, not as this error).
    Engine(String),
    /// Front-end/interface-manager failures (unknown sheet, bad window,
    /// overlapping contexts, edits to read-only result regions).
    Interface(String),
    /// Primary-key violation on insert/update.
    KeyViolation(String),
    /// Named table does not exist.
    TableNotFound(String),
    /// Named column does not exist in the referenced table.
    ColumnNotFound(String),
    /// A computation produced an in-cell error in a context that demanded a
    /// clean value (e.g. `RANGEVALUE` pointing at `#REF!`).
    CellValue(CellError),
}

impl DsError {
    /// The in-cell error a failed `DBSQL`/`DBTABLE` command should display.
    pub fn as_cell_error(&self) -> CellError {
        match self {
            DsError::CellValue(e) => *e,
            DsError::Parse(_) => CellError::Name,
            _ => CellError::Db,
        }
    }
}

impl fmt::Display for DsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsError::Parse(m) => write!(f, "parse error: {m}"),
            DsError::Schema(m) => write!(f, "schema error: {m}"),
            DsError::Storage(m) => write!(f, "storage error: {m}"),
            DsError::Sql(m) => write!(f, "sql error: {m}"),
            DsError::Engine(m) => write!(f, "engine error: {m}"),
            DsError::Interface(m) => write!(f, "interface error: {m}"),
            DsError::KeyViolation(m) => write!(f, "primary key violation: {m}"),
            DsError::TableNotFound(t) => write!(f, "table not found: {t}"),
            DsError::ColumnNotFound(c) => write!(f, "column not found: {c}"),
            DsError::CellValue(e) => write!(f, "cell error: {e}"),
        }
    }
}

impl std::error::Error for DsError {}

impl From<CellError> for DsError {
    fn from(e: CellError) -> Self {
        DsError::CellValue(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DsError::TableNotFound("actors".into());
        assert!(e.to_string().contains("actors"));
        let e = DsError::Parse("unexpected `)`".into());
        assert!(e.to_string().contains("unexpected"));
    }

    #[test]
    fn cell_error_mapping() {
        assert_eq!(DsError::Sql("x".into()).as_cell_error(), CellError::Db);
        assert_eq!(DsError::Parse("x".into()).as_cell_error(), CellError::Name);
        assert_eq!(
            DsError::CellValue(CellError::Ref).as_cell_error(),
            CellError::Ref
        );
    }
}
