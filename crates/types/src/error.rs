//! The workspace-wide error type.
//!
//! Each layer of the system (storage, SQL, formula, engine, front-end) reports
//! through the same enum so errors can cross crate boundaries without
//! re-wrapping. In-cell errors ([`crate::CellError`]) are distinct: those are
//! *values* a user sees in a cell; `DsError` is for API misuse and internal
//! failures.

use std::fmt;
use std::path::PathBuf;

use crate::value::CellError;

pub type DsResult<T> = Result<T, DsError>;

/// Context attached to a failed I/O operation: which file, which operation,
/// and (when known) which byte offset. Carried boxed inside
/// [`DsError::Io`] so the common non-error path stays a thin enum.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IoContext {
    /// Short human-readable operation name, e.g. `"wal append"`.
    pub op: String,
    /// File (or directory) the operation targeted.
    pub path: PathBuf,
    /// Byte offset of the failed access, when the operation has one.
    pub offset: Option<u64>,
    /// The OS-level error classification.
    pub kind: std::io::ErrorKind,
    /// The underlying error's message.
    pub detail: String,
}

impl fmt::Display for IoContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} failed on {}", self.op, self.path.display())?;
        if let Some(off) = self.offset {
            write!(f, " at offset {off}")?;
        }
        write!(f, ": {} ({:?})", self.detail, self.kind)
    }
}

/// Errors surfaced by DataSpread APIs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DsError {
    /// Lexing/parsing failures (A1 addresses, formulae, SQL).
    Parse(String),
    /// Schema violations: duplicate/unknown column, type mismatch, bad DDL.
    Schema(String),
    /// Storage-layer failures (page codec, missing row keys, capacity).
    Storage(String),
    /// SQL binding/execution failures (unknown table/column, arity, …).
    Sql(String),
    /// Compute-engine failures (scheduler misuse; cycles surface as `#CYCLE!`
    /// cell values, not as this error).
    Engine(String),
    /// Front-end/interface-manager failures (unknown sheet, bad window,
    /// overlapping contexts, edits to read-only result regions).
    Interface(String),
    /// Primary-key violation on insert/update.
    KeyViolation(String),
    /// Named table does not exist.
    TableNotFound(String),
    /// Named column does not exist in the referenced table.
    ColumnNotFound(String),
    /// A computation produced an in-cell error in a context that demanded a
    /// clean value (e.g. `RANGEVALUE` pointing at `#REF!`).
    CellValue(CellError),
    /// An I/O syscall failed, with full operation context (path, op, offset,
    /// [`std::io::ErrorKind`]). Storage layers report physical failures
    /// through this variant so callers can distinguish ENOSPC from
    /// corruption from a vanished file.
    Io(Box<IoContext>),
    /// The engine has degraded to read-only after an unrecoverable storage
    /// fault (e.g. a failed WAL fsync). Reads and snapshots still work;
    /// every write is rejected with this error until the workbook is
    /// reopened. The payload is the reason the engine was poisoned.
    ReadOnly(String),
}

impl DsError {
    /// The in-cell error a failed `DBSQL`/`DBTABLE` command should display.
    pub fn as_cell_error(&self) -> CellError {
        match self {
            DsError::CellValue(e) => *e,
            DsError::Parse(_) => CellError::Name,
            _ => CellError::Db,
        }
    }

    /// Build an [`DsError::Io`] from a failed `std::io` operation.
    pub fn io(
        op: impl Into<String>,
        path: impl Into<PathBuf>,
        offset: Option<u64>,
        e: &std::io::Error,
    ) -> DsError {
        DsError::Io(Box::new(IoContext {
            op: op.into(),
            path: path.into(),
            offset,
            kind: e.kind(),
            detail: e.to_string(),
        }))
    }

    /// True when this error means "the engine refuses writes until reopen".
    pub fn is_read_only(&self) -> bool {
        matches!(self, DsError::ReadOnly(_))
    }
}

impl fmt::Display for DsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DsError::Parse(m) => write!(f, "parse error: {m}"),
            DsError::Schema(m) => write!(f, "schema error: {m}"),
            DsError::Storage(m) => write!(f, "storage error: {m}"),
            DsError::Sql(m) => write!(f, "sql error: {m}"),
            DsError::Engine(m) => write!(f, "engine error: {m}"),
            DsError::Interface(m) => write!(f, "interface error: {m}"),
            DsError::KeyViolation(m) => write!(f, "primary key violation: {m}"),
            DsError::TableNotFound(t) => write!(f, "table not found: {t}"),
            DsError::ColumnNotFound(c) => write!(f, "column not found: {c}"),
            DsError::CellValue(e) => write!(f, "cell error: {e}"),
            DsError::Io(ctx) => write!(f, "io error: {ctx}"),
            DsError::ReadOnly(m) => write!(f, "engine is read-only: {m}"),
        }
    }
}

impl std::error::Error for DsError {}

impl From<CellError> for DsError {
    fn from(e: CellError) -> Self {
        DsError::CellValue(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DsError::TableNotFound("actors".into());
        assert!(e.to_string().contains("actors"));
        let e = DsError::Parse("unexpected `)`".into());
        assert!(e.to_string().contains("unexpected"));
    }

    #[test]
    fn cell_error_mapping() {
        assert_eq!(DsError::Sql("x".into()).as_cell_error(), CellError::Db);
        assert_eq!(DsError::Parse("x".into()).as_cell_error(), CellError::Name);
        assert_eq!(
            DsError::CellValue(CellError::Ref).as_cell_error(),
            CellError::Ref
        );
    }
}
