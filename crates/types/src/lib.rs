//! Shared vocabulary for the DataSpread workspace.
//!
//! This crate defines the types that every other DataSpread crate speaks:
//!
//! * [`CellAddr`] / [`Range`] — positions on a sheet, with full A1-notation
//!   parsing and formatting (`B7`, `AA12`, `A1:D100`).
//! * [`CellRef`] / [`RangeRef`] — *references* as they appear inside formulae,
//!   i.e. positions plus absolute/relative flags (`$A$1`) and an optional sheet
//!   qualifier (`Sheet2!B3`).
//! * [`Value`] — the dynamically-typed scalar stored in a cell or a relational
//!   attribute, with spreadsheet coercion and comparison semantics.
//! * [`CellError`] — in-cell error codes (`#DIV/0!`, `#REF!`, `#CYCLE!`, …).
//! * [`DataType`] — the small type lattice used for automatic schema inference
//!   when a sheet region is exported to the database (paper §2.2, "Data typing").
//! * [`DsError`] — the workspace-wide error type.
//!
//! The paper this workspace reproduces is *DataSpread: Unifying Databases and
//! Spreadsheets* (Bendre et al., PVLDB 8(12), 2015). See `DESIGN.md` at the
//! repository root for the complete system inventory.

pub mod addr;
pub mod dtype;
pub mod error;
pub mod value;

pub use addr::{col_to_letters, letters_to_col, CellAddr, CellRef, Range, RangeRef, SheetRef};
pub use dtype::DataType;
pub use error::{DsError, DsResult, IoContext};
pub use value::{CellError, Value};
