//! The dynamically-typed scalar shared by the sheet and the database.
//!
//! Spreadsheets type values *per cell*; relational attributes are typed *per
//! column*. DataSpread bridges the two by making [`Value`] the single currency:
//! the formula engine evaluates to `Value`s, the relational storage manager
//! stores `Value`s (validated against the column's [`crate::DataType`]), and
//! schema inference derives column types from observed `Value`s.

use std::cmp::Ordering;
use std::fmt;

/// In-cell error codes, displayed like their spreadsheet counterparts.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CellError {
    /// Division by zero (`#DIV/0!`).
    Div0,
    /// Invalid or deleted reference (`#REF!`).
    Ref,
    /// Wrong operand type for an operation (`#VALUE!`).
    Value,
    /// Unknown function or name (`#NAME?`).
    Name,
    /// Circular dependency (`#CYCLE!`). Real spreadsheets pop a dialog; a
    /// headless kernel surfaces it as an error value instead.
    Cycle,
    /// Lookup produced no result (`#N/A`).
    Na,
    /// Numeric result outside the representable domain (`#NUM!`).
    Num,
    /// A `DBSQL`/`DBTABLE` command failed in the database layer (`#DB!`).
    /// DataSpread-specific: the spreadsheet surface for back-end failures.
    Db,
}

impl CellError {
    pub fn code(self) -> &'static str {
        match self {
            CellError::Div0 => "#DIV/0!",
            CellError::Ref => "#REF!",
            CellError::Value => "#VALUE!",
            CellError::Name => "#NAME?",
            CellError::Cycle => "#CYCLE!",
            CellError::Na => "#N/A",
            CellError::Num => "#NUM!",
            CellError::Db => "#DB!",
        }
    }

    /// Parse a displayed error code back into the enum (used by clipboard
    /// round-trips and tests).
    pub fn parse(s: &str) -> Option<CellError> {
        Some(match s {
            "#DIV/0!" => CellError::Div0,
            "#REF!" => CellError::Ref,
            "#VALUE!" => CellError::Value,
            "#NAME?" => CellError::Name,
            "#CYCLE!" => CellError::Cycle,
            "#N/A" => CellError::Na,
            "#NUM!" => CellError::Num,
            "#DB!" => CellError::Db,
            _ => return None,
        })
    }
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// A dynamically-typed scalar.
///
/// `Int` and `Float` are kept distinct so schema inference can produce
/// `INTEGER` columns; arithmetic coerces between them with spreadsheet
/// semantics (integer division producing a fraction yields a `Float`).
#[derive(Clone, PartialEq, Debug, Default)]
pub enum Value {
    /// An empty cell / SQL NULL. The two are unified: exporting an empty cell
    /// stores NULL, importing NULL shows an empty cell.
    #[default]
    Empty,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(String),
    Error(CellError),
}

impl Value {
    pub fn text(s: impl Into<String>) -> Value {
        Value::Text(s.into())
    }

    pub fn is_empty(&self) -> bool {
        matches!(self, Value::Empty)
    }

    pub fn is_error(&self) -> bool {
        matches!(self, Value::Error(_))
    }

    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    pub fn as_error(&self) -> Option<CellError> {
        match self {
            Value::Error(e) => Some(*e),
            _ => None,
        }
    }

    /// Numeric coercion with spreadsheet semantics: numbers pass through,
    /// booleans become 0/1, empty becomes 0, numeric-looking text parses,
    /// anything else is `#VALUE!`.
    pub fn coerce_f64(&self) -> Result<f64, CellError> {
        match self {
            Value::Int(i) => Ok(*i as f64),
            Value::Float(f) => Ok(*f),
            Value::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            Value::Empty => Ok(0.0),
            Value::Text(s) => s.trim().parse::<f64>().map_err(|_| CellError::Value),
            Value::Error(e) => Err(*e),
        }
    }

    /// Integer coercion: floats must be integral (Excel truncates in some
    /// contexts; we require exactness where an integer is demanded, e.g.
    /// `LIMIT` and repeat counts, and truncate explicitly elsewhere).
    pub fn coerce_i64(&self) -> Result<i64, CellError> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Ok(*f as i64),
            Value::Float(_) => Err(CellError::Value),
            Value::Bool(b) => Ok(*b as i64),
            Value::Empty => Ok(0),
            Value::Text(s) => s.trim().parse::<i64>().map_err(|_| CellError::Value),
            Value::Error(e) => Err(*e),
        }
    }

    /// Boolean coercion: FALSE/0/empty are false; TRUE/non-zero are true;
    /// the strings "TRUE"/"FALSE" (any case) parse; other text is `#VALUE!`.
    pub fn coerce_bool(&self) -> Result<bool, CellError> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Int(i) => Ok(*i != 0),
            Value::Float(f) => Ok(*f != 0.0),
            Value::Empty => Ok(false),
            Value::Text(s) => match s.trim().to_ascii_uppercase().as_str() {
                "TRUE" => Ok(true),
                "FALSE" => Ok(false),
                _ => Err(CellError::Value),
            },
            Value::Error(e) => Err(*e),
        }
    }

    /// Text coercion: how the value concatenates with `&` and renders in a
    /// cell. Empty renders as the empty string.
    pub fn coerce_text(&self) -> Result<String, CellError> {
        match self {
            Value::Error(e) => Err(*e),
            other => Ok(other.display_string()),
        }
    }

    /// The string shown in a cell (errors render their code).
    pub fn display_string(&self) -> String {
        match self {
            Value::Empty => String::new(),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => format_float(*f),
            Value::Text(s) => s.clone(),
            Value::Error(e) => e.code().to_string(),
        }
    }

    /// Parse user keyboard input the way a spreadsheet does: numbers and
    /// booleans are recognized, everything else is text.
    ///
    /// Formula input (`=…`) is **not** a literal and cannot be represented as
    /// a `Value`: formula-capable layers (`Sheet::set_input` and above) must
    /// intercept the `=` prefix and route it through the formula parser
    /// before calling this. If formula input does reach this literal parser,
    /// it yields `#NAME?` — never silent text that would round-trip as a lie.
    pub fn from_input(s: &str) -> Value {
        let t = s.trim();
        if t.is_empty() {
            return Value::Empty;
        }
        if t.starts_with('=') {
            return Value::Error(CellError::Name);
        }
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = t.parse::<f64>() {
            if f.is_finite() {
                return Value::Float(f);
            }
        }
        match t.to_ascii_uppercase().as_str() {
            "TRUE" => return Value::Bool(true),
            "FALSE" => return Value::Bool(false),
            _ => {}
        }
        if let Some(e) = CellError::parse(t) {
            return Value::Error(e);
        }
        Value::Text(s.to_string())
    }

    /// Spreadsheet comparison semantics: numbers < text < booleans; numbers
    /// compare numerically (Int/Float unified), text case-insensitively,
    /// FALSE < TRUE. `Empty` coerces to the other operand's type zero
    /// (0 / "" / FALSE). Errors do not compare (`None`).
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Int(_) | Float(_) => 0,
                Text(_) => 1,
                Bool(_) => 2,
                Empty => 3,
                Error(_) => 4,
            }
        }
        if self.is_error() || other.is_error() {
            return None;
        }
        match (self, other) {
            (Empty, Empty) => Some(Ordering::Equal),
            (Empty, b) => Value::zero_like(b).compare(b),
            (a, Empty) => a.compare(&Value::zero_like(a)),
            (a, b) if rank(a) == rank(b) => match (a, b) {
                (Text(x), Text(y)) => Some(x.to_lowercase().cmp(&y.to_lowercase())),
                (Bool(x), Bool(y)) => Some(x.cmp(y)),
                _ => {
                    let x = a.coerce_f64().ok()?;
                    let y = b.coerce_f64().ok()?;
                    x.partial_cmp(&y)
                }
            },
            (a, b) => Some(rank(a).cmp(&rank(b))),
        }
    }

    /// SQL-flavoured equality for keys and DISTINCT: type-strict except that
    /// Int and Float compare numerically. NULL (`Empty`) equals NULL here —
    /// the grouping semantics, not the predicate semantics.
    pub fn sql_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (a, b) => a == b,
        }
    }

    fn zero_like(template: &Value) -> Value {
        match template {
            Value::Text(_) => Value::Text(String::new()),
            Value::Bool(_) => Value::Bool(false),
            _ => Value::Int(0),
        }
    }

    /// Total ordering used for ORDER BY and sort-based operators: NULL first,
    /// then the [`Value::compare`] order, errors last.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn class(v: &Value) -> u8 {
            match v {
                Value::Empty => 0,
                Value::Error(_) => 2,
                _ => 1,
            }
        }
        match (class(self), class(other)) {
            (0, 0) => Ordering::Equal,
            (2, 2) => Ordering::Equal,
            (a, b) if a != b => a.cmp(&b),
            _ => self.compare(other).unwrap_or(Ordering::Equal),
        }
    }
}

/// Render a float the way a cell would: integral values drop the `.0`, and we
/// use the shortest round-trip representation otherwise.
fn format_float(f: f64) -> String {
    if f.is_nan() || f.is_infinite() {
        return "#NUM!".to_string();
    }
    if f.fract() == 0.0 && f.abs() < 1e15 {
        format!("{}", f as i64)
    } else {
        format!("{f}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_string())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<CellError> for Value {
    fn from(v: CellError) -> Self {
        Value::Error(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_round_trip() {
        for e in [
            CellError::Div0,
            CellError::Ref,
            CellError::Value,
            CellError::Name,
            CellError::Cycle,
            CellError::Na,
            CellError::Num,
            CellError::Db,
        ] {
            assert_eq!(CellError::parse(e.code()), Some(e));
        }
        assert_eq!(CellError::parse("#BOGUS!"), None);
    }

    #[test]
    fn coerce_f64_spreadsheet_semantics() {
        assert_eq!(Value::Int(3).coerce_f64(), Ok(3.0));
        assert_eq!(Value::Float(2.5).coerce_f64(), Ok(2.5));
        assert_eq!(Value::Bool(true).coerce_f64(), Ok(1.0));
        assert_eq!(Value::Empty.coerce_f64(), Ok(0.0));
        assert_eq!(Value::text(" 42 ").coerce_f64(), Ok(42.0));
        assert_eq!(Value::text("abc").coerce_f64(), Err(CellError::Value));
        assert_eq!(
            Value::Error(CellError::Ref).coerce_f64(),
            Err(CellError::Ref)
        );
    }

    #[test]
    fn coerce_i64_requires_integral_floats() {
        assert_eq!(Value::Float(4.0).coerce_i64(), Ok(4));
        assert_eq!(Value::Float(4.5).coerce_i64(), Err(CellError::Value));
        assert_eq!(Value::text("7").coerce_i64(), Ok(7));
    }

    #[test]
    fn coerce_bool_parses_true_false_text() {
        assert_eq!(Value::text("true").coerce_bool(), Ok(true));
        assert_eq!(Value::text("FALSE").coerce_bool(), Ok(false));
        assert_eq!(Value::Int(0).coerce_bool(), Ok(false));
        assert_eq!(Value::Int(-2).coerce_bool(), Ok(true));
        assert_eq!(Value::text("yes").coerce_bool(), Err(CellError::Value));
    }

    #[test]
    fn display_matches_spreadsheet_rendering() {
        assert_eq!(Value::Empty.display_string(), "");
        assert_eq!(Value::Bool(true).display_string(), "TRUE");
        assert_eq!(Value::Int(-5).display_string(), "-5");
        assert_eq!(Value::Float(3.0).display_string(), "3");
        assert_eq!(Value::Float(3.25).display_string(), "3.25");
        assert_eq!(Value::Error(CellError::Div0).display_string(), "#DIV/0!");
    }

    #[test]
    fn from_input_recognizes_literals() {
        assert_eq!(Value::from_input("42"), Value::Int(42));
        assert_eq!(Value::from_input("3.5"), Value::Float(3.5));
        assert_eq!(Value::from_input("TRUE"), Value::Bool(true));
        assert_eq!(Value::from_input("hello"), Value::text("hello"));
        assert_eq!(Value::from_input(""), Value::Empty);
        assert_eq!(Value::from_input("  "), Value::Empty);
        assert_eq!(Value::from_input("#REF!"), Value::Error(CellError::Ref));
    }

    #[test]
    fn from_input_never_stores_formulae_as_text() {
        // The literal parser cannot hold a formula; layers with a formula
        // engine intercept `=` first. Reaching here is #NAME?, not text.
        assert_eq!(
            Value::from_input("=SUM(A1:B2)"),
            Value::Error(CellError::Name)
        );
        assert_eq!(Value::from_input(" =A1 "), Value::Error(CellError::Name));
    }

    #[test]
    fn compare_numbers_before_text_before_bools() {
        let n = Value::Int(999_999);
        let t = Value::text("a");
        let b = Value::Bool(false);
        assert_eq!(n.compare(&t), Some(Ordering::Less));
        assert_eq!(t.compare(&b), Some(Ordering::Less));
        assert_eq!(n.compare(&b), Some(Ordering::Less));
    }

    #[test]
    fn compare_text_case_insensitive() {
        assert_eq!(
            Value::text("Apple").compare(&Value::text("apple")),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::text("apple").compare(&Value::text("Banana")),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn compare_int_float_unified() {
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn compare_empty_coerces() {
        assert_eq!(Value::Empty.compare(&Value::Int(0)), Some(Ordering::Equal));
        assert_eq!(
            Value::Empty.compare(&Value::text("")),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Empty.compare(&Value::Bool(false)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Empty.compare(&Value::Int(-1)),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn errors_do_not_compare() {
        assert_eq!(Value::Error(CellError::Na).compare(&Value::Int(1)), None);
    }

    #[test]
    fn sql_eq_unifies_numeric_types_only() {
        assert!(Value::Int(2).sql_eq(&Value::Float(2.0)));
        assert!(!Value::Int(1).sql_eq(&Value::text("1")));
        assert!(Value::Empty.sql_eq(&Value::Empty));
    }

    #[test]
    fn total_cmp_orders_null_first_errors_last() {
        let mut vals = [
            Value::text("b"),
            Value::Error(CellError::Na),
            Value::Int(1),
            Value::Empty,
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_empty());
        assert!(vals[3].is_error());
    }
}
