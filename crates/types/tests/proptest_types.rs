//! Property-based tests for the shared vocabulary: A1 codec round trips,
//! range algebra laws, value comparison sanity, type-lattice laws.
//!
//! Driven by `dataspread_testkit` (deterministic seeds) instead of an
//! external property-testing crate — see substitution #4 in `DESIGN.md`.

use dataspread_testkit::{cases, Rng};
use dataspread_types::{col_to_letters, letters_to_col, CellAddr, DataType, Range, Value};

fn arb_addr(rng: &mut Rng) -> CellAddr {
    CellAddr::new(rng.u32_in(0, 100_000), rng.u32_in(0, 5_000))
}

fn arb_value(rng: &mut Rng) -> Value {
    const ALPHABET: &[char] = &['a', 'b', 'z', 'A', 'Q', '0', '7', '9', ' ', 'x', 'y', 'M'];
    match rng.weighted(&[1, 1, 2, 2, 2]) {
        0 => Value::Empty,
        1 => Value::Bool(rng.bool()),
        2 => Value::Int(rng.i64()),
        3 => Value::Float(rng.f64_in(-1e12, 1e12)),
        _ => Value::Text(rng.string(ALPHABET, 12)),
    }
}

// Seed helpers keep each test's stream independent.
fn seed(n: u64) -> u64 {
    0xD5_0000 + n
}

#[test]
fn column_letters_round_trip() {
    cases(256, seed(1), |rng| {
        let c = rng.u32_in(0, 1_000_000);
        assert_eq!(letters_to_col(&col_to_letters(c)), Some(c));
    });
}

#[test]
fn a1_round_trip() {
    cases(256, seed(2), |rng| {
        let a = arb_addr(rng);
        assert_eq!(CellAddr::parse_a1(&a.to_a1()).unwrap(), a);
    });
}

#[test]
fn range_round_trip() {
    cases(256, seed(3), |rng| {
        let r = Range::new(arb_addr(rng), arb_addr(rng));
        assert_eq!(Range::parse_a1(&r.to_a1()).unwrap(), r);
    });
}

#[test]
fn range_intersection_symmetric_and_contained() {
    cases(256, seed(4), |rng| {
        let r = Range::new(arb_addr(rng), arb_addr(rng));
        let s = Range::new(arb_addr(rng), arb_addr(rng));
        let i1 = r.intersection(&s);
        let i2 = s.intersection(&r);
        assert_eq!(i1, i2);
        if let Some(i) = i1 {
            assert!(r.contains_range(&i));
            assert!(s.contains_range(&i));
            assert!(r.intersects(&s));
        } else {
            assert!(!r.intersects(&s));
        }
    });
}

#[test]
fn range_union_contains_both() {
    cases(256, seed(5), |rng| {
        let r = Range::new(arb_addr(rng), arb_addr(rng));
        let s = Range::new(arb_addr(rng), arb_addr(rng));
        let u = r.union(&s);
        assert!(u.contains_range(&r));
        assert!(u.contains_range(&s));
    });
}

#[test]
fn small_range_iter_count_matches() {
    cases(128, seed(6), |rng| {
        // Bound the size so iteration stays cheap.
        let a = arb_addr(rng);
        let b = CellAddr::new(a.row + 7, a.col + 5);
        let r = Range::new(a, b);
        assert_eq!(r.iter_cells().count() as u64, r.cell_count());
        for cell in r.iter_cells() {
            assert!(r.contains(cell));
        }
    });
}

#[test]
fn compare_is_antisymmetric() {
    cases(512, seed(7), |rng| {
        use std::cmp::Ordering;
        let x = arb_value(rng);
        let y = arb_value(rng);
        if let (Some(a), Some(b)) = (x.compare(&y), y.compare(&x)) {
            match a {
                Ordering::Less => assert_eq!(b, Ordering::Greater),
                Ordering::Greater => assert_eq!(b, Ordering::Less),
                Ordering::Equal => assert_eq!(b, Ordering::Equal),
            }
        }
    });
}

#[test]
fn total_cmp_produces_valid_sort() {
    cases(256, seed(8), |rng| {
        let mut vals: Vec<Value> = (0..rng.index(32)).map(|_| arb_value(rng)).collect();
        vals.sort_by(|a, b| a.total_cmp(b));
        // NULLs first, errors last: once we leave the NULL prefix we never
        // see another NULL.
        let mut seen_non_null = false;
        for v in &vals {
            if v.is_empty() {
                assert!(!seen_non_null);
            } else {
                seen_non_null = true;
            }
        }
    });
}

#[test]
fn unify_is_commutative_and_idempotent() {
    let types = [
        DataType::Bool,
        DataType::Int,
        DataType::Float,
        DataType::Text,
        DataType::Any,
    ];
    for x in types {
        for y in types {
            assert_eq!(DataType::unify(x, y), DataType::unify(y, x));
        }
        assert_eq!(DataType::unify(x, x), x);
    }
}

#[test]
fn inferred_type_admits_every_sample() {
    cases(256, seed(9), |rng| {
        let vals: Vec<Value> = (0..rng.usize_in(1, 24)).map(|_| arb_value(rng)).collect();
        let t = DataType::infer_column(vals.iter());
        for v in &vals {
            if !v.is_error() {
                // `admits` is strict (no coercion), so check the storage path
                // instead: whatever we inferred must accept each value.
                assert!(
                    t.coerce_for_storage(v.clone()).is_some() || v.is_empty(),
                    "type {t} rejected value {v:?}"
                );
            }
        }
    });
}

#[test]
fn display_parse_value_round_trip_numbers() {
    cases(512, seed(10), |rng| {
        let v = Value::Int(rng.i64());
        assert_eq!(Value::from_input(&v.display_string()), v);
    });
}
