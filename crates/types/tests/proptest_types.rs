//! Property-based tests for the shared vocabulary: A1 codec round trips,
//! range algebra laws, value comparison sanity, type-lattice laws.

use proptest::prelude::*;

use dataspread_types::{
    col_to_letters, letters_to_col, CellAddr, DataType, Range, Value,
};

fn arb_addr() -> impl Strategy<Value = CellAddr> {
    (0u32..100_000, 0u32..5_000).prop_map(|(r, c)| CellAddr::new(r, c))
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Empty),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::Text),
    ]
}

proptest! {
    #[test]
    fn column_letters_round_trip(c in 0u32..1_000_000) {
        prop_assert_eq!(letters_to_col(&col_to_letters(c)), Some(c));
    }

    #[test]
    fn a1_round_trip(a in arb_addr()) {
        prop_assert_eq!(CellAddr::parse_a1(&a.to_a1()).unwrap(), a);
    }

    #[test]
    fn range_round_trip(a in arb_addr(), b in arb_addr()) {
        let r = Range::new(a, b);
        prop_assert_eq!(Range::parse_a1(&r.to_a1()).unwrap(), r);
    }

    #[test]
    fn range_intersection_symmetric_and_contained(a in arb_addr(), b in arb_addr(), c in arb_addr(), d in arb_addr()) {
        let r = Range::new(a, b);
        let s = Range::new(c, d);
        let i1 = r.intersection(&s);
        let i2 = s.intersection(&r);
        prop_assert_eq!(i1, i2);
        if let Some(i) = i1 {
            prop_assert!(r.contains_range(&i));
            prop_assert!(s.contains_range(&i));
            prop_assert_eq!(r.intersects(&s), true);
        } else {
            prop_assert_eq!(r.intersects(&s), false);
        }
    }

    #[test]
    fn range_union_contains_both(a in arb_addr(), b in arb_addr(), c in arb_addr(), d in arb_addr()) {
        let r = Range::new(a, b);
        let s = Range::new(c, d);
        let u = r.union(&s);
        prop_assert!(u.contains_range(&r));
        prop_assert!(u.contains_range(&s));
    }

    #[test]
    fn small_range_iter_count_matches(a in arb_addr()) {
        // Bound the size so iteration stays cheap.
        let b = CellAddr::new(a.row + 7, a.col + 5);
        let r = Range::new(a, b);
        prop_assert_eq!(r.iter_cells().count() as u64, r.cell_count());
        // Every iterated cell is contained.
        for cell in r.iter_cells() {
            prop_assert!(r.contains(cell));
        }
    }

    #[test]
    fn compare_is_antisymmetric(x in arb_value(), y in arb_value()) {
        use std::cmp::Ordering;
        if let (Some(a), Some(b)) = (x.compare(&y), y.compare(&x)) {
            match a {
                Ordering::Less => prop_assert_eq!(b, Ordering::Greater),
                Ordering::Greater => prop_assert_eq!(b, Ordering::Less),
                Ordering::Equal => prop_assert_eq!(b, Ordering::Equal),
            }
        }
    }

    #[test]
    fn total_cmp_produces_valid_sort(mut vals in proptest::collection::vec(arb_value(), 0..32)) {
        vals.sort_by(|a, b| a.total_cmp(b));
        // NULLs first, errors last: once we leave the NULL prefix we never
        // see another NULL.
        let mut seen_non_null = false;
        for v in &vals {
            if v.is_empty() {
                prop_assert!(!seen_non_null);
            } else {
                seen_non_null = true;
            }
        }
    }

    #[test]
    fn unify_is_commutative_and_idempotent(a in 0usize..5, b in 0usize..5) {
        let types = [DataType::Bool, DataType::Int, DataType::Float, DataType::Text, DataType::Any];
        let (x, y) = (types[a], types[b]);
        prop_assert_eq!(DataType::unify(x, y), DataType::unify(y, x));
        prop_assert_eq!(DataType::unify(x, x), x);
    }

    #[test]
    fn inferred_type_admits_every_sample(vals in proptest::collection::vec(arb_value(), 1..24)) {
        let t = DataType::infer_column(vals.iter());
        for v in &vals {
            if !v.is_error() {
                // `admits` is strict (no coercion), so check the storage path
                // instead: whatever we inferred must accept each value.
                prop_assert!(
                    t.coerce_for_storage(v.clone()).is_some() || v.is_empty(),
                    "type {t} rejected value {v:?}"
                );
            }
        }
    }

    #[test]
    fn display_parse_value_round_trip_numbers(i in any::<i64>()) {
        let v = Value::Int(i);
        prop_assert_eq!(Value::from_input(&v.display_string()), v);
    }
}
