//! Clean fixture engine replay file (no Engine tags registered).

pub fn apply_engine_op() {}
