//! A clean fixture file: VFS-free, lock-correct, panic-free.

pub fn ordered(a: &M, b: &M) {
    let _ga = a.lock();
    let _gb = b.lock();
}

pub fn tidy(x: Option<u8>) -> u8 {
    x.unwrap_or_default()
}

pub fn observe(reg: &Registry) {
    reg.counter("demo_requests").bump();
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_do_anything() {
        let _ = std::fs::read("x");
        Some(1u8).unwrap();
    }
}
