//! Mini metrics registry: valid, unique, fully documented names.

pub struct MetricSpec {
    pub name: &'static str,
    pub kind: MetricKind,
    pub help: &'static str,
}

pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

pub const METRICS: &[MetricSpec] = &[
    MetricSpec { name: "demo_requests", kind: MetricKind::Counter, help: "Requests served" },
    MetricSpec { name: "demo_queue_depth", kind: MetricKind::Gauge, help: "Work items queued" },
    MetricSpec { name: "demo_latency_ns", kind: MetricKind::Histogram, help: "Request latency" },
];
