//! A fully-consistent miniature WAL module: registry, encode, decode,
//! replay arms and docs rows all line up.

const TAG_ALPHA: u8 = 1;
const TAG_BETA: u8 = 2;

pub enum ReplaySite {
    Marker,
    Table,
}

pub struct WalTagSpec {
    pub tag: u8,
    pub name: &'static str,
    pub replay: ReplaySite,
}

pub const WAL_TAGS: &[WalTagSpec] = &[
    WalTagSpec {
        tag: TAG_ALPHA,
        name: "ALPHA",
        replay: ReplaySite::Marker,
    },
    WalTagSpec {
        tag: TAG_BETA,
        name: "BETA",
        replay: ReplaySite::Table,
    },
];

pub enum WalRecord {
    Alpha,
}

pub enum WalOp {
    Beta,
}

pub fn encode(buf: &mut Vec<u8>, rec: &WalRecord) {
    match rec {
        WalRecord::Alpha => buf.push(TAG_ALPHA),
    }
    buf.push(TAG_BETA);
}

pub fn decode(tag: u8) -> Option<u8> {
    match tag {
        TAG_ALPHA => Some(1),
        TAG_BETA => Some(2),
        _ => None,
    }
}

pub fn apply_committed(ops: &[WalOp]) -> usize {
    let mut n = 0;
    for op in ops {
        match op {
            WalOp::Beta => n += 1,
        }
    }
    n
}
