//! Clean fixture error definition: full Display coverage, unique prefixes.

pub enum DsError {
    Parse(String),
    Storage(String),
}

impl core::fmt::Display for DsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DsError::Parse(m) => write!(f, "parse error: {m}"),
            DsError::Storage(m) => write!(f, "storage error: {m}"),
        }
    }
}
