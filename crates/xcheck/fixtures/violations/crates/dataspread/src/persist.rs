//! Fixture engine replay site: CHARLIE replays here (Engine).

use crate::wal::WalOp;

pub fn apply_engine_op(op: &WalOp) -> bool {
    matches!(op, WalOp::Charlie)
}
