//! One panic site against a baseline of three -> stale-baseline finding.

pub fn one_site(x: Option<u8>) -> u8 {
    x.unwrap()
}
