//! Seeded vfs-boundary violations (and non-violations the lexer must
//! not trip on). Line numbers are pinned by tests/fixtures.rs.

use std::fs;

pub fn open_direct(path: &std::path::Path) {
    let _f = fs::File::open(path);
    let _g = std::fs::File::create(path);
    let _o = OpenOptions::new();
}

pub fn raw_durability(f: &std::fs::File) {
    f.sync_all().ok();
    f.sync_data().ok();
}

pub fn suppressed(path: &std::path::Path) {
    // xcheck:allow(vfs-boundary)
    let _ = std::fs::read(path);
}

pub fn not_violations() {
    // std::fs::File::open in a comment is fine
    let _s = "std::fs::File::open inside a string is fine";
    let _r = r#"OpenOptions in a raw string is fine"#;
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_use_std_fs() {
        let _ = std::fs::read("x");
    }
}
