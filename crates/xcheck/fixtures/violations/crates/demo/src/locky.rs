//! Seeded lock-order violations against the fixture hierarchy
//! (docs/CONCURRENCY.md: `a` = outer level 1, `b` = inner level 2).

pub fn bad_order(a: &M, b: &M) {
    let _gb = b.lock();
    let _ga = a.lock();
}

pub fn fsync_while_locked(a: &M, file: &F) {
    let _ga = a.lock();
    file.sync().ok();
}

pub fn clean_nesting(a: &M, b: &M, file: &F) {
    let ga = a.lock();
    let gb = b.lock();
    drop(gb);
    drop(ga);
    file.sync().ok();
}

pub fn temporaries_are_fine(a: &M, b: &M) {
    b.lock().touch();
    let _ga = a.lock();
}
