//! Seeds a metric-name usage violation: a series name that is not in
//! the `METRICS` registry, plus a suppressed one that must stay silent.

pub fn observe(reg: &Registry) {
    reg.counter("demo_unregistered").bump();
    // xcheck:allow(metric-name) migration shim, catalog row lands next PR
    reg.counter("demo_shimmed").bump();
}
