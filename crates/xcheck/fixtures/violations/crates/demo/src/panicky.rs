//! Two panic sites against a baseline of one -> over-baseline finding.

pub fn risky(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn also_risky(x: Option<u8>) -> u8 {
    x.expect("present")
}
