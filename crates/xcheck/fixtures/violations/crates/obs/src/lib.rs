//! Seeds metric-name registry violations: an invalid name, a duplicate,
//! and an undocumented metric.

pub struct MetricSpec {
    pub name: &'static str,
    pub kind: MetricKind,
    pub help: &'static str,
}

pub enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

pub const METRICS: &[MetricSpec] = &[
    MetricSpec { name: "demo_requests", kind: MetricKind::Counter, help: "Requests served" },
    MetricSpec { name: "Bad-Name", kind: MetricKind::Counter, help: "violates the name rule" },
    MetricSpec { name: "demo_requests", kind: MetricKind::Counter, help: "registered twice" },
    MetricSpec { name: "demo_undocumented", kind: MetricKind::Gauge, help: "no catalog row" },
];
