//! Allowlisted: the fixture allow.txt exempts this file, so its raw
//! std::fs use must NOT be reported.

pub fn os_read(path: &std::path::Path) -> std::io::Result<Vec<u8>> {
    std::fs::read(path)
}
