//! Seeded wal-tag violations: an orphan constant, a value gap, a
//! missing encode site, a missing Table replay arm, a missing docs row.

const TAG_ALPHA: u8 = 1;
const TAG_BETA: u8 = 2;
const TAG_CHARLIE: u8 = 4;
const TAG_ORPHAN: u8 = 9;

pub enum ReplaySite {
    Marker,
    Table,
    Engine,
}

pub struct WalTagSpec {
    pub tag: u8,
    pub name: &'static str,
    pub replay: ReplaySite,
}

pub const WAL_TAGS: &[WalTagSpec] = &[
    WalTagSpec {
        tag: TAG_ALPHA,
        name: "ALPHA",
        replay: ReplaySite::Marker,
    },
    WalTagSpec {
        tag: TAG_BETA,
        name: "BETA",
        replay: ReplaySite::Table,
    },
    WalTagSpec {
        tag: TAG_CHARLIE,
        name: "CHARLIE",
        replay: ReplaySite::Engine,
    },
];

pub enum WalRecord {
    Alpha,
}

pub enum WalOp {
    Beta,
    Charlie,
}

pub fn encode(buf: &mut Vec<u8>, rec: &WalRecord) {
    match rec {
        WalRecord::Alpha => buf.push(TAG_ALPHA),
    }
    buf.push(TAG_BETA);
}

pub fn decode(tag: u8) -> Option<u8> {
    match tag {
        TAG_ALPHA => Some(1),
        TAG_BETA => Some(2),
        TAG_CHARLIE => Some(4),
        _ => None,
    }
}

pub fn apply_committed(ops: &[WalOp]) -> usize {
    // No WalOp::Beta arm here: BETA's Table replay is missing.
    ops.len()
}
