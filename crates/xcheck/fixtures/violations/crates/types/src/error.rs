//! Seeded error-code violations: `Io` has no Display arm, and `Schema`
//! reuses `Parse`'s prefix.

pub enum DsError {
    Parse(String),
    Schema(String),
    Io(String),
}

impl core::fmt::Display for DsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DsError::Parse(m) => write!(f, "parse error: {m}"),
            DsError::Schema(m) => write!(f, "parse error: {m}"),
            _ => Ok(()),
        }
    }
}
