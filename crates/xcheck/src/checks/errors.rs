//! `error-code`: every `DsError` variant must have a `Display` arm, and
//! the human-readable prefixes (the text before the first `{`
//! interpolation) must be unique and non-empty — error text is the only
//! stable "error code" the SQL layer and the golden suites key on, so
//! two variants rendering identically would be indistinguishable in
//! logs, tests and `.slt` expectations.

use crate::lexer::TokKind;
use crate::model::SourceFile;
use crate::Finding;

/// Check id used in findings.
pub const CHECK: &str = "error-code";

/// Collect the variant names of `enum DsError`.
fn variants(file: &SourceFile) -> Vec<(String, u32)> {
    let t = &file.tokens;
    let mut out = Vec::new();
    // Find `enum DsError {`.
    let Some(start) = (0..t.len())
        .find(|&i| t[i].is_ident("enum") && t.get(i + 1).is_some_and(|x| x.is_ident("DsError")))
    else {
        return out;
    };
    let Some(open) = (start..t.len()).find(|&i| t[i].is_punct('{')) else {
        return out;
    };
    let mut brace = 1i32;
    let mut paren = 0i32;
    let mut i = open + 1;
    while i < t.len() && brace > 0 {
        match t[i].kind {
            TokKind::Punct('{') => brace += 1,
            TokKind::Punct('}') => brace -= 1,
            TokKind::Punct('(') | TokKind::Punct('<') => paren += 1,
            TokKind::Punct(')') | TokKind::Punct('>') => paren -= 1,
            TokKind::Punct('#') if t.get(i + 1).is_some_and(|x| x.is_punct('[')) => {
                // Skip attribute contents.
                let mut d = 0i32;
                let mut j = i + 1;
                while j < t.len() {
                    match t[j].kind {
                        TokKind::Punct('[') => d += 1,
                        TokKind::Punct(']') => {
                            d -= 1;
                            if d == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
            TokKind::Ident if brace == 1 && paren == 0 => {
                let next = t.get(i + 1);
                if next.is_some_and(|x| {
                    x.is_punct('(') || x.is_punct(',') || x.is_punct('}') || x.is_punct('{')
                }) {
                    out.push((t[i].text.clone(), t[i].line));
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Collect `(variant, prefix, line)` from the `Display` impl's arms: for
/// each `DsError::V` pattern inside `impl Display for DsError`, the
/// prefix is the first string literal's text up to its first `{`.
fn display_arms(file: &SourceFile) -> Vec<(String, String, u32)> {
    let t = &file.tokens;
    let mut out = Vec::new();
    // Find `Display for DsError`.
    let Some(start) = (0..t.len()).find(|&i| {
        t[i].is_ident("Display")
            && t.get(i + 1).is_some_and(|x| x.is_ident("for"))
            && t.get(i + 2).is_some_and(|x| x.is_ident("DsError"))
    }) else {
        return out;
    };
    let Some(open) = (start..t.len()).find(|&i| t[i].is_punct('{')) else {
        return out;
    };
    let mut brace = 1i32;
    let mut i = open + 1;
    // Collect DsError::V positions, then the Str that follows each before
    // the next arm.
    let mut arms: Vec<(String, u32, usize)> = Vec::new();
    while i < t.len() && brace > 0 {
        match t[i].kind {
            TokKind::Punct('{') => brace += 1,
            TokKind::Punct('}') => brace -= 1,
            _ => {}
        }
        if t[i].is_ident("DsError")
            && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 3).is_some_and(|x| x.kind == TokKind::Ident)
        {
            arms.push((t[i + 3].text.clone(), t[i + 3].line, i));
        }
        i += 1;
    }
    let end = i;
    for (k, (name, line, pos)) in arms.iter().enumerate() {
        let next_pos = arms.get(k + 1).map(|a| a.2).unwrap_or(end);
        let prefix = (pos + 4..next_pos)
            .find_map(|j| {
                if t[j].kind == TokKind::Str {
                    let text = &t[j].text;
                    let cut = text.find('{').unwrap_or(text.len());
                    Some(text[..cut].to_string())
                } else {
                    None
                }
            })
            .unwrap_or_default();
        out.push((name.clone(), prefix, *line));
    }
    out
}

/// Run the uniqueness/coverage checks on the error definition file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let vars = variants(file);
    if vars.is_empty() {
        out.push(Finding::new(
            &file.rel,
            0,
            CHECK,
            "could not find `enum DsError`; error-code check has nothing to verify".to_string(),
        ));
        return out;
    }
    let arms = display_arms(file);
    for (v, line) in &vars {
        match arms.iter().find(|(a, _, _)| a == v) {
            None => out.push(Finding::new(
                &file.rel,
                *line,
                CHECK,
                format!("variant `{v}` has no `Display` arm — it would render through a wildcard or not at all"),
            )),
            Some((_, prefix, aline)) => {
                if prefix.trim().is_empty() {
                    out.push(Finding::new(
                        &file.rel,
                        *aline,
                        CHECK,
                        format!("variant `{v}` renders with an empty prefix; give it a distinct `<kind> error:` prefix"),
                    ));
                }
            }
        }
    }
    // Prefix uniqueness across arms (only arms for real variants count).
    for (k, (v, prefix, line)) in arms.iter().enumerate() {
        if prefix.trim().is_empty() {
            continue;
        }
        if let Some((dup, _, _)) = arms[..k].iter().find(|(_, p, _)| p == prefix) {
            out.push(Finding::new(
                &file.rel,
                *line,
                CHECK,
                format!(
                    "variants `{dup}` and `{v}` share the Display prefix `{prefix}`; \
                     error text must identify the variant uniquely"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<String> {
        let f = SourceFile::from_source("crates/types/src/error.rs", src);
        check(&f).into_iter().map(|x| x.message).collect()
    }

    const CLEAN: &str = r#"
        pub enum DsError { Parse(String), Io(Box<Ctx>) }
        impl fmt::Display for DsError {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self {
                    DsError::Parse(m) => write!(f, "parse error: {m}"),
                    DsError::Io(c) => write!(f, "io error: {c}"),
                }
            }
        }
    "#;

    #[test]
    fn clean_definition_passes() {
        assert!(run(CLEAN).is_empty());
    }

    #[test]
    fn missing_arm_is_flagged() {
        let src = CLEAN.replace(r#"DsError::Io(c) => write!(f, "io error: {c}"),"#, "");
        let msgs = run(&src);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("`Io` has no `Display` arm"));
    }

    #[test]
    fn duplicate_prefix_is_flagged() {
        let src = CLEAN.replace("io error: {c}", "parse error: {c}");
        let msgs = run(&src);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("share the Display prefix `parse error: `"));
    }
}
