//! `lock-order`: nested lock acquisitions must respect the hierarchy
//! declared in `docs/CONCURRENCY.md` (workbook → table shard → WAL
//! append → WAL sync), and none of those locks may be held across an
//! fsync-class call.
//!
//! The analysis is intra-function and lexical: an acquisition is a
//! `receiver.lock()` / `.read()` / `.write()` call with **empty**
//! argument parens (so `vfs.read(path)` and `io::Read::read(buf)` don't
//! match) whose receiver identifier and containing module match a row of
//! the hierarchy table. Guards bound by `let` are tracked until a
//! `drop(var)` or the end of the function; temporary guards (no `let`)
//! die at the end of their statement. Helper-mediated acquisitions
//! (`self.read_shard()`) are invisible — the hierarchy names the
//! receivers used at real call sites, see docs/ANALYSIS.md for limits.

use std::path::Path;

use crate::lexer::TokKind;
use crate::model::{functions, skip_nested_fn, SourceFile};
use crate::Finding;

/// Check id used in findings and suppression comments.
pub const CHECK: &str = "lock-order";

/// One row of the machine-readable hierarchy table.
#[derive(Clone, Debug)]
pub struct LockClass {
    /// Rank: lower acquires first.
    pub level: u32,
    /// Human name, e.g. `wal-append`.
    pub name: String,
    /// Module-path prefixes the row applies to (`relstore::wal` matches
    /// `relstore::wal` and any submodule).
    pub modules: Vec<String>,
    /// Receiver identifier the lock is acquired through.
    pub receiver: String,
    /// Accepted methods, from {`lock`, `read`, `write`}.
    pub ops: Vec<String>,
}

/// Parse the table between the `xcheck:lock-order` markers in
/// CONCURRENCY.md. Returns an error string if the markers or table are
/// missing/malformed — the caller turns that into a finding so CI fails
/// loudly instead of silently checking nothing.
pub fn parse_lock_table(md: &str) -> Result<Vec<LockClass>, String> {
    let begin = md
        .find("<!-- xcheck:lock-order:begin -->")
        .ok_or("missing `<!-- xcheck:lock-order:begin -->` marker")?;
    let end = md
        .find("<!-- xcheck:lock-order:end -->")
        .ok_or("missing `<!-- xcheck:lock-order:end -->` marker")?;
    if end < begin {
        return Err("lock-order markers out of order".to_string());
    }
    let mut classes = Vec::new();
    for line in md[begin..end].lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        if cells.len() < 5 || cells[0] == "level" || cells[0].starts_with("---") {
            continue;
        }
        let level: u32 = cells[0]
            .parse()
            .map_err(|_| format!("bad level `{}` in lock table", cells[0]))?;
        classes.push(LockClass {
            level,
            name: cells[1].to_string(),
            modules: cells[2].split(',').map(|s| s.trim().to_string()).collect(),
            receiver: cells[3].to_string(),
            ops: cells[4].split(',').map(|s| s.trim().to_string()).collect(),
        });
    }
    if classes.is_empty() {
        return Err("lock table between markers has no rows".to_string());
    }
    Ok(classes)
}

/// Load and parse the hierarchy from `root/<lock_doc>`.
pub fn load_lock_table(root: &Path, lock_doc: &str) -> Result<Vec<LockClass>, String> {
    let md = std::fs::read_to_string(root.join(lock_doc))
        .map_err(|e| format!("cannot read {lock_doc}: {e}"))?;
    parse_lock_table(&md)
}

fn module_matches(module: &str, prefixes: &[String]) -> bool {
    prefixes
        .iter()
        .any(|p| module == p || module.starts_with(&format!("{p}::")))
}

/// Fsync-class method names: holding a registered lock across any of
/// these stalls every thread queued on that lock for a disk flush.
const FSYNC_METHODS: &[&str] = &["sync", "sync_all", "sync_data", "sync_dir", "fsync"];

struct Held {
    level: u32,
    name: String,
    var: Option<String>,
    line: u32,
}

/// Scan one file's functions for order violations and fsync-under-lock.
pub fn check(file: &SourceFile, classes: &[LockClass]) -> Vec<Finding> {
    let applicable: Vec<&LockClass> = classes
        .iter()
        .filter(|c| module_matches(&file.module, &c.modules))
        .collect();
    if applicable.is_empty() {
        return Vec::new();
    }
    let t = &file.tokens;
    let mut out = Vec::new();
    for f in functions(file) {
        let mut held: Vec<Held> = Vec::new();
        let mut i = f.body_start;
        while i < f.body_end {
            // Don't attribute a nested fn's locks to the enclosing fn.
            let skipped = skip_nested_fn(t, i);
            if skipped != i {
                i = skipped;
                continue;
            }
            let tok = &t[i];
            // drop(var) releases the named guard.
            if tok.is_ident("drop")
                && t.get(i + 1).is_some_and(|x| x.is_punct('('))
                && t.get(i + 2).is_some_and(|x| x.kind == TokKind::Ident)
                && t.get(i + 3).is_some_and(|x| x.is_punct(')'))
            {
                let var = &t[i + 2].text;
                held.retain(|h| h.var.as_deref() != Some(var.as_str()));
                i += 4;
                continue;
            }
            // Statement end releases temporaries (guards never bound to a
            // variable live only inside their statement).
            if tok.is_punct(';') || tok.is_punct('}') {
                held.retain(|h| h.var.is_some());
                i += 1;
                continue;
            }
            // Acquisition: Ident(recv) . Ident(op) ( )
            if tok.kind == TokKind::Ident
                && t.get(i + 1).is_some_and(|x| x.is_punct('.'))
                && t.get(i + 2).is_some_and(|x| x.kind == TokKind::Ident)
                && t.get(i + 3).is_some_and(|x| x.is_punct('('))
                && t.get(i + 4).is_some_and(|x| x.is_punct(')'))
            {
                let recv = &tok.text;
                let op = &t[i + 2].text;
                if let Some(class) = applicable
                    .iter()
                    .find(|c| &c.receiver == recv && c.ops.iter().any(|o| o == op))
                {
                    let line = tok.line;
                    for h in &held {
                        if h.level > class.level && !file.allowed(CHECK, line) {
                            out.push(Finding::new(
                                &file.rel,
                                line,
                                CHECK,
                                format!(
                                    "fn `{}` acquires `{}` (level {}) while holding `{}` (level {}, line {}); hierarchy: docs/CONCURRENCY.md",
                                    f.name, class.name, class.level, h.name, h.level, h.line
                                ),
                            ));
                        }
                    }
                    let var = guard_var(file, i);
                    // Re-binding the same variable replaces the old guard.
                    if let Some(v) = &var {
                        held.retain(|h| h.var.as_deref() != Some(v.as_str()));
                    }
                    held.push(Held {
                        level: class.level,
                        name: class.name.clone(),
                        var,
                        line,
                    });
                    i += 5;
                    continue;
                }
            }
            // Fsync-class call while holding a registered lock.
            if tok.is_punct('.')
                && t.get(i + 1)
                    .is_some_and(|x| FSYNC_METHODS.iter().any(|m| x.is_ident(m)))
                && t.get(i + 2).is_some_and(|x| x.is_punct('('))
                && !held.is_empty()
            {
                let m = &t[i + 1].text;
                let line = t[i + 1].line;
                if !file.allowed(CHECK, line) {
                    let holding: Vec<String> = held
                        .iter()
                        .map(|h| format!("`{}` (line {})", h.name, h.line))
                        .collect();
                    out.push(Finding::new(
                        &file.rel,
                        line,
                        CHECK,
                        format!(
                            "fn `{}` calls `.{m}()` while holding {}; release before fsync-class calls",
                            f.name,
                            holding.join(", ")
                        ),
                    ));
                }
            }
            i += 1;
        }
    }
    out
}

/// Find the variable a guard is bound to: scan back from the receiver to
/// the start of the statement; if there is an `=`, the identifier just
/// before it is the binding (`let mut st = ...`, `st = ...`). Returns
/// None for temporaries (`for s in x { s.write().unwrap()...; }`).
fn guard_var(file: &SourceFile, recv_idx: usize) -> Option<String> {
    let t = &file.tokens;
    let mut j = recv_idx;
    while j > 0 {
        j -= 1;
        match t[j].kind {
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => return None,
            TokKind::Punct('=') => {
                // Exclude `=>`, `==`, `!=`, `<=`, `>=` — only a bare `=`
                // directly binding the expression counts.
                let prev_is_cmp = j > 0
                    && matches!(
                        t[j - 1].kind,
                        TokKind::Punct('=')
                            | TokKind::Punct('!')
                            | TokKind::Punct('<')
                            | TokKind::Punct('>')
                    );
                let next_is_arrow = t
                    .get(j + 1)
                    .is_some_and(|x| x.is_punct('>') || x.is_punct('='));
                if prev_is_cmp || next_is_arrow {
                    continue;
                }
                let mut k = j;
                while k > 0 {
                    k -= 1;
                    if t[k].kind == TokKind::Ident {
                        if t[k].text == "mut" || t[k].text == "let" {
                            continue;
                        }
                        return Some(t[k].text.clone());
                    }
                    // `let (a, b) = ...` — destructuring; give up.
                    return None;
                }
                return None;
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes() -> Vec<LockClass> {
        parse_lock_table(
            "<!-- xcheck:lock-order:begin -->\n\
             | level | class | modules | receiver | ops |\n\
             |---|---|---|---|---|\n\
             | 1 | outer | demo | a | lock |\n\
             | 2 | inner | demo | b | lock |\n\
             <!-- xcheck:lock-order:end -->",
        )
        .unwrap()
    }

    fn run(src: &str) -> Vec<String> {
        let f = SourceFile::from_source("crates/demo/src/lib.rs", src);
        check(&f, &classes())
            .into_iter()
            .map(|x| x.message)
            .collect()
    }

    #[test]
    fn correct_order_is_clean() {
        assert!(run("fn f(a: M, b: M) { let g1 = a.lock(); let g2 = b.lock(); }").is_empty());
    }

    #[test]
    fn inverted_order_is_flagged() {
        let msgs = run("fn f(a: M, b: M) { let g2 = b.lock(); let g1 = a.lock(); }");
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("acquires `outer` (level 1) while holding `inner` (level 2"));
    }

    #[test]
    fn drop_releases_named_guard() {
        assert!(
            run("fn f(a: M, b: M) { let g2 = b.lock(); drop(g2); let g1 = a.lock(); }").is_empty()
        );
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        assert!(run("fn f(a: M, b: M) { b.lock().push(1); let g1 = a.lock(); }").is_empty());
    }

    #[test]
    fn call_with_args_is_not_an_acquisition() {
        assert!(run("fn f(a: M, b: M) { let x = b.lock(path); let g = a.lock(); }").is_empty());
    }

    #[test]
    fn fsync_under_lock_is_flagged() {
        let msgs = run("fn f(a: M, file: F) { let g = a.lock(); file.sync_all(); }");
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("calls `.sync_all()` while holding"));
    }

    #[test]
    fn fsync_after_drop_is_clean() {
        assert!(
            run("fn f(a: M, file: F) { let g = a.lock(); drop(g); file.sync_all(); }").is_empty()
        );
    }

    #[test]
    fn suppression_comment_silences() {
        let src = "fn f(a: M, b: M) {\n let g2 = b.lock();\n // xcheck:allow(lock-order)\n let g1 = a.lock(); }";
        assert!(run(src).is_empty());
    }

    #[test]
    fn other_module_is_out_of_scope() {
        let f = SourceFile::from_source(
            "crates/other/src/lib.rs",
            "fn f(a: M, b: M) { let g2 = b.lock(); let g1 = a.lock(); }",
        );
        assert!(check(&f, &classes()).is_empty());
    }
}
