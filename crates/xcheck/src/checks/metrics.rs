//! `metric-name`: the `METRICS` registry in `crates/obs` is the source
//! of truth for observability series. Every registered name must obey
//! the repo's Prometheus rule `[a-z0-9_]+` and be unique; every metric
//! needs a catalog row in `docs/OBSERVABILITY.md`; and every string
//! literal handed to a registry/snapshot method anywhere in library code
//! (`.counter("…")`, `.push_counter("…")`, …) must be a registered name
//! — ad-hoc series names silently fork the catalog.

use crate::lexer::TokKind;
use crate::model::SourceFile;
use crate::{Allowlist, Finding};

/// Check id used in findings.
pub const CHECK: &str = "metric-name";

/// Registry / snapshot methods whose first argument names a metric.
const NAME_SINKS: &[&str] = &[
    "counter",
    "gauge",
    "histogram",
    "push_counter",
    "push_gauge",
    "push_histogram",
    "register_counter",
    "register_gauge",
    "register_histogram",
];

/// A parsed `MetricSpec` entry.
#[derive(Debug)]
pub struct Entry {
    /// Metric name string.
    pub name: String,
    /// Kind variant, lowercased: `counter` / `gauge` / `histogram`.
    pub kind: String,
    /// Line of the entry.
    pub line: u32,
}

/// Mirror of `dataspread_obs::is_valid_metric_name`: `[a-z0-9_]+`.
pub fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

/// Parse the `METRICS` slice literal into entries. Returns None if the
/// registry is absent.
fn registry(obs: &SourceFile) -> Option<Vec<Entry>> {
    let t = &obs.tokens;
    let start = t.iter().position(|x| x.is_ident("METRICS"))?;
    // Find the opening `[` of the slice literal — the one after the `=`
    // (the type annotation `&[MetricSpec]` also contains a `[`).
    let eq = (start..t.len()).find(|&i| t[i].is_punct('='))?;
    let open = (eq..t.len()).find(|&i| t[i].is_punct('['))?;
    let mut depth = 0i32;
    let mut close = open;
    for (i, tok) in t.iter().enumerate().skip(open) {
        match tok.kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    close = i;
                    break;
                }
            }
            _ => {}
        }
    }
    let mut entries = Vec::new();
    let mut i = open;
    while i < close {
        if !t[i].is_ident("MetricSpec") {
            i += 1;
            continue;
        }
        let line = t[i].line;
        // Scan this struct literal's fields up to its closing `}`.
        let mut name = String::new();
        let mut kind = String::new();
        let mut bd = 0i32;
        let mut j = i + 1;
        while j < close {
            match t[j].kind {
                TokKind::Punct('{') => bd += 1,
                TokKind::Punct('}') => {
                    bd -= 1;
                    if bd == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if t[j].is_ident("name") && t.get(j + 1).is_some_and(|x| x.is_punct(':')) {
                if let Some(s) = t.get(j + 2) {
                    if s.kind == TokKind::Str {
                        name = s.text.clone();
                    }
                }
            }
            if t[j].is_ident("MetricKind")
                && t.get(j + 1).is_some_and(|x| x.is_punct(':'))
                && t.get(j + 2).is_some_and(|x| x.is_punct(':'))
                && t.get(j + 3).is_some_and(|x| x.kind == TokKind::Ident)
            {
                kind = t[j + 3].text.to_lowercase();
            }
            j += 1;
        }
        entries.push(Entry { name, kind, line });
        i = j + 1;
    }
    Some(entries)
}

/// Run the metric-name checks: registry hygiene + docs rows in `obs`,
/// then a usage sweep over every workspace file.
pub fn check(
    obs: &SourceFile,
    obs_doc_md: &str,
    obs_doc_rel: &str,
    files: &[SourceFile],
    allow: &Allowlist,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let Some(entries) = registry(obs) else {
        out.push(Finding::new(
            &obs.rel,
            0,
            CHECK,
            "no `METRICS` registry found; every exported series must be registered".to_string(),
        ));
        return out;
    };

    for (i, e) in entries.iter().enumerate() {
        if !valid_name(&e.name) {
            out.push(Finding::new(
                &obs.rel,
                e.line,
                CHECK,
                format!("metric name `{}` violates the `[a-z0-9_]+` rule", e.name),
            ));
            continue; // don't pile docs findings onto an invalid name
        }
        if entries[..i].iter().any(|p| p.name == e.name) {
            out.push(Finding::new(
                &obs.rel,
                e.line,
                CHECK,
                format!("metric `{}` registered twice in `METRICS`", e.name),
            ));
            continue;
        }
        // Catalog row: `| `name` | kind |` in docs/OBSERVABILITY.md.
        let needle = format!("| `{}` | {} |", e.name, e.kind);
        if !obs_doc_md.contains(&needle) {
            out.push(Finding::new(
                &obs.rel,
                e.line,
                CHECK,
                format!(
                    "metric `{}` has no `{needle}` row in the {obs_doc_rel} catalog table",
                    e.name
                ),
            ));
        }
    }

    // Usage sweep: every literal name passed to a registry/snapshot
    // method must be registered. Method-call shape only (`.sink("…"`), so
    // trait definitions and non-metric helpers named `counter` don't trip.
    for f in files {
        if allow.allows(CHECK, &f.rel) {
            continue;
        }
        let t = &f.tokens;
        for i in 1..t.len() {
            if f.in_test[i] {
                continue;
            }
            if !(t[i].kind == TokKind::Ident
                && NAME_SINKS.contains(&t[i].text.as_str())
                && t[i - 1].is_punct('.')
                && t.get(i + 1).is_some_and(|x| x.is_punct('('))
                && t.get(i + 2).is_some_and(|x| x.kind == TokKind::Str))
            {
                continue;
            }
            let name = &t[i + 2].text;
            let line = t[i].line;
            if entries.iter().any(|e| &e.name == name) || f.allowed(CHECK, line) {
                continue;
            }
            out.push(Finding::new(
                &f.rel,
                line,
                CHECK,
                format!(
                    "metric `{name}` is used here but not registered in the `METRICS` table ({})",
                    obs.rel
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_rule() {
        assert!(valid_name("wal_appends"));
        assert!(valid_name("calc_topo_depth"));
        assert!(!valid_name(""));
        assert!(!valid_name("Bad-Name"));
        assert!(!valid_name("walAppends"));
    }

    #[test]
    fn registry_parses_entries() {
        let src = r#"
            pub const METRICS: &[MetricSpec] = &[
                MetricSpec { name: "a_one", kind: MetricKind::Counter, help: "x" },
                MetricSpec { name: "b_two", kind: MetricKind::Histogram, help: "y" },
            ];
        "#;
        let f = SourceFile::from_source("crates/obs/src/lib.rs", src);
        let entries = registry(&f).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "a_one");
        assert_eq!(entries[0].kind, "counter");
        assert_eq!(entries[1].kind, "histogram");
    }
}
