//! The six repo invariants. Each check takes lexed sources and returns
//! [`crate::Finding`]s; none of them parse Rust beyond the token stream.

pub mod errors;
pub mod locks;
pub mod metrics;
pub mod panics;
pub mod vfs;
pub mod waltags;
