//! `panic-path`: `unwrap()` / `expect(` / `panic!` in non-test library
//! code, counted per file against a committed baseline. New sites fail;
//! removed sites also fail until the baseline is re-recorded (so the
//! burn-down is deliberate, visible in the diff, and never regresses
//! silently). `unwrap_or`, `unwrap_or_else`, `unwrap_or_default` are
//! not panic sites and are not counted.

use std::collections::BTreeMap;
use std::path::Path;

use crate::lexer::TokKind;
use crate::model::SourceFile;
use crate::Finding;

/// Check id used in findings and suppression comments.
pub const CHECK: &str = "panic-path";

/// Count panic sites in one file; returns the 1-based lines of each.
pub fn panic_sites(file: &SourceFile) -> Vec<u32> {
    let t = &file.tokens;
    let mut lines = Vec::new();
    for i in 0..t.len() {
        if file.in_test[i] || t[i].kind != TokKind::Ident {
            continue;
        }
        let preceded_by_dot = i > 0 && t[i - 1].is_punct('.');
        let site = match t[i].text.as_str() {
            // .unwrap() — exact: the token after `(` must be `)`.
            "unwrap" => {
                preceded_by_dot
                    && t.get(i + 1).is_some_and(|x| x.is_punct('('))
                    && t.get(i + 2).is_some_and(|x| x.is_punct(')'))
            }
            // .expect("...") — any args.
            "expect" => preceded_by_dot && t.get(i + 1).is_some_and(|x| x.is_punct('(')),
            // panic!(...) — macro bang required.
            "panic" => t.get(i + 1).is_some_and(|x| x.is_punct('!')),
            _ => false,
        };
        if site && !file.allowed(CHECK, t[i].line) {
            lines.push(t[i].line);
        }
    }
    lines
}

/// Parse a baseline file: `<count> <path>` lines, `#` comments.
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut map = BTreeMap::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (count, path) = line
            .split_once(' ')
            .ok_or(format!("baseline line {} malformed: `{line}`", no + 1))?;
        let count: usize = count
            .parse()
            .map_err(|_| format!("baseline line {} has bad count: `{line}`", no + 1))?;
        map.insert(path.trim().to_string(), count);
    }
    Ok(map)
}

/// Render per-file counts in baseline format (sorted, stable).
pub fn render_baseline(counts: &BTreeMap<String, usize>) -> String {
    let mut out = String::from(
        "# xcheck panic-path baseline: `<count> <file>` of unwrap/expect/panic! sites\n\
         # in non-test library code. Burn sites down, then re-record with\n\
         # `cargo run -p xcheck -- --update-baseline`. Never hand-raise a count.\n",
    );
    for (path, count) in counts {
        if *count > 0 {
            out.push_str(&format!("{count} {path}\n"));
        }
    }
    out
}

/// Compare measured counts against the baseline at `root/<baseline_rel>`.
pub fn check(counts: &BTreeMap<String, Vec<u32>>, root: &Path, baseline_rel: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let baseline = match std::fs::read_to_string(root.join(baseline_rel)) {
        Ok(text) => match parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                out.push(Finding::new(baseline_rel, 0, CHECK, e));
                return out;
            }
        },
        Err(e) => {
            out.push(Finding::new(
                baseline_rel,
                0,
                CHECK,
                format!("cannot read baseline: {e}; record one with --update-baseline"),
            ));
            return out;
        }
    };
    for (path, lines) in counts {
        let base = baseline.get(path).copied().unwrap_or(0);
        let n = lines.len();
        if n > base {
            let sample: Vec<String> = lines.iter().take(3).map(u32::to_string).collect();
            out.push(Finding::new(
                path,
                *lines.first().unwrap_or(&0),
                CHECK,
                format!(
                    "{n} panic sites (unwrap/expect/panic!) exceed baseline {base}; \
                     near lines {} — return a typed DsError instead",
                    sample.join(", ")
                ),
            ));
        } else if n < base {
            out.push(Finding::new(
                path,
                0,
                CHECK,
                format!(
                    "baseline records {base} panic sites but only {n} remain; \
                     lock in the burn-down with `cargo run -p xcheck -- --update-baseline`"
                ),
            ));
        }
    }
    for (path, base) in &baseline {
        if *base > 0 && !counts.contains_key(path) {
            out.push(Finding::new(
                path,
                0,
                CHECK,
                format!(
                    "baseline records {base} panic sites but the file is gone or out of scope; \
                     re-record with `cargo run -p xcheck -- --update-baseline`"
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_only_real_panic_idioms() {
        let src = r#"
            fn f(x: Option<u8>) -> u8 {
                let a = x.unwrap();
                let b = x.expect("msg");
                if a == 0 { panic!("zero"); }
                let c = x.unwrap_or(1);
                let d = x.unwrap_or_else(|| 2);
                let e = x.unwrap_or_default();
                a + b + c + d + e
            }
            #[cfg(test)]
            mod tests {
                fn t(x: Option<u8>) { x.unwrap(); }
            }
        "#;
        let f = SourceFile::from_source("crates/demo/src/lib.rs", src);
        assert_eq!(panic_sites(&f).len(), 3);
    }

    #[test]
    fn suppressed_sites_are_not_counted() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); // xcheck:allow(panic-path)\n }";
        let f = SourceFile::from_source("crates/demo/src/lib.rs", src);
        assert!(panic_sites(&f).is_empty());
    }

    #[test]
    fn baseline_roundtrip() {
        let mut counts = BTreeMap::new();
        counts.insert("crates/a/src/lib.rs".to_string(), 3usize);
        counts.insert("crates/b/src/lib.rs".to_string(), 0usize);
        let text = render_baseline(&counts);
        let parsed = parse_baseline(&text).unwrap();
        assert_eq!(parsed.get("crates/a/src/lib.rs"), Some(&3));
        assert!(!parsed.contains_key("crates/b/src/lib.rs"));
    }
}
