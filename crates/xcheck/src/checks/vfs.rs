//! `vfs-boundary`: all file I/O in library code must go through the
//! `relstore::vfs` traits. Direct `std::fs`, `File::open/create/options`,
//! `OpenOptions`, or raw `.sync_all()/.sync_data()` calls outside the
//! allowlist are findings — they bypass fault injection (`FaultVfs`) and
//! the fsync-failure model.

use crate::model::SourceFile;
use crate::Finding;

/// Check id used in findings, allowlists and suppression comments.
pub const CHECK: &str = "vfs-boundary";

/// Scan one file for VFS-boundary violations.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let t = &file.tokens;
    let mut out = Vec::new();
    let mut push = |line: u32, message: String| {
        if !file.allowed(CHECK, line) {
            out.push(Finding::new(&file.rel, line, CHECK, message));
        }
    };
    let mut last_line_fs = 0u32; // dedupe repeated `std::fs::...` on one line
    for i in 0..t.len() {
        if file.in_test[i] {
            continue;
        }
        // std :: fs
        if t[i].is_ident("std")
            && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 3).is_some_and(|x| x.is_ident("fs"))
        {
            if t[i].line != last_line_fs {
                last_line_fs = t[i].line;
                push(
                    t[i].line,
                    "direct `std::fs` use in library code; route through the `Vfs` trait"
                        .to_string(),
                );
            }
            continue;
        }
        // File :: open|create|options  (std::fs::File convention)
        if t[i].is_ident("File")
            && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 3).is_some_and(|x| {
                x.is_ident("open") || x.is_ident("create") || x.is_ident("options")
            })
        {
            let m = &t[i + 3].text;
            push(
                t[i].line,
                format!("`File::{m}` bypasses the `Vfs` boundary; use `Vfs::open`/`Vfs::create`"),
            );
            continue;
        }
        // OpenOptions anywhere in library code.
        if t[i].is_ident("OpenOptions") {
            push(
                t[i].line,
                "`OpenOptions` bypasses the `Vfs` boundary; extend the `Vfs` trait instead"
                    .to_string(),
            );
            continue;
        }
        // .sync_all( / .sync_data( — raw fd durability outside VfsFile::sync.
        if t[i].is_punct('.')
            && t.get(i + 1)
                .is_some_and(|x| x.is_ident("sync_all") || x.is_ident("sync_data"))
            && t.get(i + 2).is_some_and(|x| x.is_punct('('))
        {
            let m = &t[i + 1].text;
            push(
                t[i + 1].line,
                format!(
                    "raw `.{m}()` outside the `Vfs`; durability must flow through `VfsFile::sync`"
                ),
            );
        }
    }
    out
}
