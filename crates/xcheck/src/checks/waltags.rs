//! `wal-tag`: the WAL record-tag registry (`WAL_TAGS` in
//! `relstore::wal`) is the source of truth for on-disk tags. Every
//! `TAG_…` constant must be registered exactly once; tags must be unique
//! and contiguous from 1; and every registered tag needs an encode site
//! (`push(TAG_…)`), a decode match arm (`TAG_… =>`), a replay match arm
//! at its declared `ReplaySite` (`WalOp::Variant` in
//! `apply_committed` for Table tags, in the engine replay file for
//! Engine tags, `WalRecord::Variant` for markers), and a row in the
//! `docs/STORAGE.md` record table.

use crate::lexer::TokKind;
use crate::model::{functions, SourceFile};
use crate::Finding;

/// Check id used in findings.
pub const CHECK: &str = "wal-tag";

/// A parsed registry entry.
#[derive(Debug)]
pub struct Entry {
    /// `TAG_…` constant name referenced by the entry.
    pub tag_const: String,
    /// Canonical record name, e.g. `UPDATE-CELL`.
    pub name: String,
    /// `Marker` / `Table` / `Engine`.
    pub site: String,
    /// Line of the entry.
    pub line: u32,
}

/// `UPDATE-CELL` -> `UpdateCell` (the `WalOp`/`WalRecord` variant name).
pub fn variant_name(name: &str) -> String {
    name.split('-')
        .map(|w| {
            let lower = w.to_lowercase();
            let mut cs = lower.chars();
            match cs.next() {
                Some(f) => f.to_uppercase().chain(cs).collect::<String>(),
                None => String::new(),
            }
        })
        .collect()
}

/// Collect `const TAG_X: u8 = N;` declarations: name -> (value, line).
fn tag_consts(wal: &SourceFile) -> Vec<(String, u8, u32)> {
    let t = &wal.tokens;
    let mut out = Vec::new();
    for i in 0..t.len() {
        if wal.in_test[i] {
            continue;
        }
        if t[i].is_ident("const")
            && t.get(i + 1)
                .is_some_and(|x| x.kind == TokKind::Ident && x.text.starts_with("TAG_"))
            && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 3).is_some_and(|x| x.is_ident("u8"))
            && t.get(i + 4).is_some_and(|x| x.is_punct('='))
            && t.get(i + 5).is_some_and(|x| x.kind == TokKind::Num)
        {
            if let Ok(v) = t[i + 5].text.parse::<u8>() {
                out.push((t[i + 1].text.clone(), v, t[i + 1].line));
            }
        }
    }
    out
}

/// Parse the `WAL_TAGS` slice literal into entries. Returns None if the
/// registry is absent.
fn registry(wal: &SourceFile) -> Option<Vec<Entry>> {
    let t = &wal.tokens;
    let start = t.iter().position(|x| x.is_ident("WAL_TAGS"))?;
    // Find the opening `[` of the slice literal — the one after the `=`
    // (the type annotation `&[WalTagSpec]` also contains a `[`).
    let eq = (start..t.len()).find(|&i| t[i].is_punct('='))?;
    let open = (eq..t.len()).find(|&i| t[i].is_punct('['))?;
    let mut depth = 0i32;
    let mut close = open;
    for (i, tok) in t.iter().enumerate().skip(open) {
        match tok.kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    close = i;
                    break;
                }
            }
            _ => {}
        }
    }
    let mut entries = Vec::new();
    let mut i = open;
    while i < close {
        if !t[i].is_ident("WalTagSpec") {
            i += 1;
            continue;
        }
        let line = t[i].line;
        // Scan this struct literal's fields up to its closing `}`.
        let mut tag_const = String::new();
        let mut name = String::new();
        let mut site = String::new();
        let mut bd = 0i32;
        let mut j = i + 1;
        while j < close {
            match t[j].kind {
                TokKind::Punct('{') => bd += 1,
                TokKind::Punct('}') => {
                    bd -= 1;
                    if bd == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if t[j].is_ident("tag")
                && t.get(j + 1).is_some_and(|x| x.is_punct(':'))
                && t.get(j + 2).is_some_and(|x| x.kind == TokKind::Ident)
            {
                tag_const = t[j + 2].text.clone();
            }
            if t[j].is_ident("name") && t.get(j + 1).is_some_and(|x| x.is_punct(':')) {
                if let Some(s) = t.get(j + 2) {
                    if s.kind == TokKind::Str {
                        name = s.text.clone();
                    }
                }
            }
            if t[j].is_ident("ReplaySite")
                && t.get(j + 1).is_some_and(|x| x.is_punct(':'))
                && t.get(j + 2).is_some_and(|x| x.is_punct(':'))
                && t.get(j + 3).is_some_and(|x| x.kind == TokKind::Ident)
            {
                site = t[j + 3].text.clone();
            }
            j += 1;
        }
        entries.push(Entry {
            tag_const,
            name,
            site,
            line,
        });
        i = j + 1;
    }
    Some(entries)
}

/// True if `Prefix :: Variant` occurs in `tokens[range]`.
fn has_path(
    toks: &[crate::lexer::Token],
    range: std::ops::Range<usize>,
    prefix: &str,
    variant: &str,
) -> bool {
    let hi = range.end.min(toks.len());
    for i in range.start..hi {
        if toks[i].is_ident(prefix)
            && toks.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && toks.get(i + 2).is_some_and(|x| x.is_punct(':'))
            && toks.get(i + 3).is_some_and(|x| x.is_ident(variant))
        {
            return true;
        }
    }
    false
}

/// Run the registry cross-checks.
pub fn check(wal: &SourceFile, engine_replay: &SourceFile, storage_md: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let consts = tag_consts(wal);
    let Some(entries) = registry(wal) else {
        out.push(Finding::new(
            &wal.rel,
            0,
            CHECK,
            "no `WAL_TAGS` registry found; every on-disk tag must be registered".to_string(),
        ));
        return out;
    };

    // Bidirectional const <-> registry coverage.
    for (cname, _, cline) in &consts {
        let n = entries.iter().filter(|e| &e.tag_const == cname).count();
        if n == 0 {
            out.push(Finding::new(
                &wal.rel,
                *cline,
                CHECK,
                format!("`{cname}` is declared but missing from the `WAL_TAGS` registry"),
            ));
        } else if n > 1 {
            out.push(Finding::new(
                &wal.rel,
                *cline,
                CHECK,
                format!("`{cname}` appears {n} times in the `WAL_TAGS` registry"),
            ));
        }
    }
    for e in &entries {
        if !consts.iter().any(|(c, _, _)| c == &e.tag_const) {
            out.push(Finding::new(
                &wal.rel,
                e.line,
                CHECK,
                format!(
                    "registry entry `{}` references undeclared constant `{}`",
                    e.name, e.tag_const
                ),
            ));
        }
    }

    // Tag values unique and contiguous from 1.
    let mut values: Vec<u8> = entries
        .iter()
        .filter_map(|e| {
            consts
                .iter()
                .find(|(c, _, _)| c == &e.tag_const)
                .map(|(_, v, _)| *v)
        })
        .collect();
    values.sort_unstable();
    let expect: Vec<u8> = (1..=values.len() as u8).collect();
    if values != expect && !values.is_empty() {
        out.push(Finding::new(
            &wal.rel,
            entries.first().map(|e| e.line).unwrap_or(0),
            CHECK,
            format!(
                "registered tag values {values:?} are not unique+contiguous from 1; \
                 reusing or skipping a tag byte breaks recovery of existing WALs"
            ),
        ));
    }

    // Duplicate record names.
    for (i, e) in entries.iter().enumerate() {
        if entries[..i].iter().any(|p| p.name == e.name) {
            out.push(Finding::new(
                &wal.rel,
                e.line,
                CHECK,
                format!("record name `{}` registered twice", e.name),
            ));
        }
    }

    // Per-entry: encode, decode, replay, docs.
    let t = &wal.tokens;
    let apply_span = functions(wal)
        .into_iter()
        .find(|f| f.name == "apply_committed")
        .map(|f| f.body_start..f.body_end);
    for e in &entries {
        // encode: push ( TAG_X )
        let encoded = (0..t.len()).any(|i| {
            t[i].is_ident("push")
                && t.get(i + 1).is_some_and(|x| x.is_punct('('))
                && t.get(i + 2).is_some_and(|x| x.is_ident(&e.tag_const))
                && t.get(i + 3).is_some_and(|x| x.is_punct(')'))
        });
        if !encoded {
            out.push(Finding::new(
                &wal.rel,
                e.line,
                CHECK,
                format!(
                    "tag `{}` ({}) has no encode site `push({})`",
                    e.name, e.tag_const, e.tag_const
                ),
            ));
        }
        // decode: TAG_X =>
        let decoded = (0..t.len()).any(|i| {
            t[i].is_ident(&e.tag_const)
                && t.get(i + 1).is_some_and(|x| x.is_punct('='))
                && t.get(i + 2).is_some_and(|x| x.is_punct('>'))
        });
        if !decoded {
            out.push(Finding::new(
                &wal.rel,
                e.line,
                CHECK,
                format!(
                    "tag `{}` ({}) has no decode match arm `{} =>`",
                    e.name, e.tag_const, e.tag_const
                ),
            ));
        }
        // replay arm at the declared site.
        let variant = variant_name(&e.name);
        let replayed = match e.site.as_str() {
            "Marker" => has_path(t, 0..t.len(), "WalRecord", &variant),
            "Table" => match &apply_span {
                Some(r) => has_path(t, r.clone(), "WalOp", &variant),
                None => false,
            },
            "Engine" => has_path(
                &engine_replay.tokens,
                0..engine_replay.tokens.len(),
                "WalOp",
                &variant,
            ),
            other => {
                out.push(Finding::new(
                    &wal.rel,
                    e.line,
                    CHECK,
                    format!("tag `{}` has unknown replay site `{other}`", e.name),
                ));
                true // don't double-report
            }
        };
        if !replayed {
            let where_ = match e.site.as_str() {
                "Table" => "`apply_committed`".to_string(),
                "Engine" => format!("`{}`", engine_replay.rel),
                _ => "the WAL module".to_string(),
            };
            out.push(Finding::new(
                &wal.rel,
                e.line,
                CHECK,
                format!(
                    "tag `{}` declares ReplaySite::{} but no `{}::{variant}` match arm exists in {where_}",
                    e.name,
                    e.site,
                    if e.site == "Marker" { "WalRecord" } else { "WalOp" },
                ),
            ));
        }
        // docs row: `| <value> | <NAME> |`
        if let Some((_, v, _)) = consts.iter().find(|(c, _, _)| c == &e.tag_const) {
            let needle = format!("| {v} | {} |", e.name);
            if !storage_md.contains(&needle) {
                out.push(Finding::new(
                    &wal.rel,
                    e.line,
                    CHECK,
                    format!(
                        "tag `{}` (value {v}) has no `{needle}` row in the docs/STORAGE.md record table",
                        e.name
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_names() {
        assert_eq!(variant_name("BEGIN"), "Begin");
        assert_eq!(variant_name("UPDATE-CELL"), "UpdateCell");
        assert_eq!(variant_name("BIND-CREATE"), "BindCreate");
    }
}
