//! A minimal, hand-rolled Rust token scanner.
//!
//! Good enough to walk this workspace's sources without `syn`: it skips
//! line/block/doc comments, cooks string literals (including raw strings
//! and byte strings), disambiguates char literals from lifetimes, and
//! records `// xcheck:allow(check-id)` suppression comments with their
//! line numbers. It does **not** build a syntax tree — the checks in
//! `crate::checks` work on the flat token stream plus a few structural
//! helpers (`crate::model`).

/// What kind of token this is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unwrap`, `std`, ...).
    Ident,
    /// Numeric literal (`12`, `0xff`, `1.5e3`). Text keeps the raw digits.
    Num,
    /// String literal (`"..."`, `r#"..."#`, `b"..."`). Text is the cooked
    /// contents with simple escapes resolved.
    Str,
    /// Char or byte literal (`'a'`, `b'\n'`). Contents are not kept.
    CharLit,
    /// Lifetime (`'a`, `'static`). Text is the name without the quote.
    Lifetime,
    /// Any other single non-whitespace character.
    Punct(char),
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Payload for `Ident`/`Num`/`Str`/`Lifetime`; empty otherwise.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True if this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True if this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Result of lexing one file: the token stream plus suppression comments.
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// `(line, check-id)` pairs from `// xcheck:allow(a, b)` comments.
    /// A `*` check-id suppresses every check on that line.
    pub allows: Vec<(u32, String)>,
}

/// Lex `src` into tokens. Never fails: unterminated literals consume to
/// end of input, which is fine for an analyzer that only runs on code
/// rustc already accepted.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut tokens = Vec::new();
    let mut allows = Vec::new();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (also covers `///` and `//!` doc comments).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            collect_allows(&text, line, &mut allows);
            continue;
        }
        // Block comment, nested per Rust rules.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Char literal or lifetime.
        if c == '\'' {
            // Lifetime: 'ident not followed by a closing quote.
            if i + 1 < n && is_ident_start(b[i + 1]) {
                let mut j = i + 1;
                while j < n && is_ident_cont(b[j]) {
                    j += 1;
                }
                if j < n && b[j] == '\'' && j == i + 2 {
                    // 'a' — a one-char literal, not a lifetime.
                    tokens.push(Token {
                        kind: TokKind::CharLit,
                        text: String::new(),
                        line,
                    });
                    i = j + 1;
                    continue;
                }
                let text: String = b[i + 1..j].iter().collect();
                tokens.push(Token {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                });
                i = j;
                continue;
            }
            // Char literal, possibly escaped ('\n', '\'', '\u{1F600}').
            let mut j = i + 1;
            if j < n && b[j] == '\\' {
                j += 1;
                if j < n && b[j] == 'u' {
                    while j < n && b[j] != '\'' {
                        j += 1;
                    }
                } else {
                    j += 1; // the escaped char
                            // \x41 style: skip until quote
                    while j < n && b[j] != '\'' {
                        j += 1;
                    }
                }
            } else if j < n {
                j += 1;
            }
            if j < n && b[j] == '\'' {
                j += 1;
            }
            tokens.push(Token {
                kind: TokKind::CharLit,
                text: String::new(),
                line,
            });
            i = j;
            continue;
        }
        // String literal.
        if c == '"' {
            let start_line = line;
            let mut text = String::new();
            i += 1;
            while i < n {
                match b[i] {
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\\' if i + 1 < n => {
                        let e = b[i + 1];
                        text.push(match e {
                            'n' => '\n',
                            't' => '\t',
                            'r' => '\r',
                            '0' => '\0',
                            other => other, // \\, \", \' and approximations
                        });
                        i += 2;
                    }
                    ch => {
                        if ch == '\n' {
                            line += 1;
                        }
                        text.push(ch);
                        i += 1;
                    }
                }
            }
            tokens.push(Token {
                kind: TokKind::Str,
                text,
                line: start_line,
            });
            continue;
        }
        // Identifier — with special handling for raw strings (r", r#"),
        // byte strings (b", br#") and raw identifiers (r#foo).
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_cont(b[i]) {
                i += 1;
            }
            let text: String = b[start..i].iter().collect();
            let raw_prefix = matches!(text.as_str(), "r" | "b" | "br" | "rb");
            if raw_prefix && i < n && (b[i] == '"' || b[i] == '#') {
                let mut hashes = 0usize;
                let mut j = i;
                while j < n && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < n && b[j] == '"' {
                    // Raw (byte) string: scan to `"` followed by `hashes` #s.
                    let start_line = line;
                    j += 1;
                    let content_start = j;
                    'raw: while j < n {
                        if b[j] == '\n' {
                            line += 1;
                        }
                        if b[j] == '"' {
                            let mut k = 0;
                            while k < hashes && j + 1 + k < n && b[j + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                let content: String = b[content_start..j].iter().collect();
                                tokens.push(Token {
                                    kind: TokKind::Str,
                                    text: content,
                                    line: start_line,
                                });
                                i = j + 1 + hashes;
                                break 'raw;
                            }
                        }
                        j += 1;
                    }
                    if j >= n {
                        i = n;
                    }
                    continue;
                }
                if text == "r" && hashes == 1 && j < n && is_ident_start(b[j]) {
                    // Raw identifier r#foo: emit the bare identifier.
                    let s2 = j;
                    while j < n && is_ident_cont(b[j]) {
                        j += 1;
                    }
                    let name: String = b[s2..j].iter().collect();
                    tokens.push(Token {
                        kind: TokKind::Ident,
                        text: name,
                        line,
                    });
                    i = j;
                    continue;
                }
            }
            tokens.push(Token {
                kind: TokKind::Ident,
                text,
                line,
            });
            continue;
        }
        // Number: digits plus alphanumeric continuation (hex, suffixes,
        // exponents) and a decimal point when followed by a digit — so
        // `0..10` lexes as Num(0) .. Num(10), not a float.
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < n {
                let ch = b[i];
                let float_dot = ch == '.' && i + 1 < n && b[i + 1].is_ascii_digit();
                let float_exp_sign = (ch == '+' || ch == '-')
                    && matches!(b[i - 1], 'e' | 'E')
                    && b[start..i].contains(&'.'); // 1.5e-3
                if is_ident_cont(ch) || float_dot || float_exp_sign {
                    i += 1;
                } else {
                    break;
                }
            }
            let text: String = b[start..i].iter().collect();
            tokens.push(Token {
                kind: TokKind::Num,
                text,
                line,
            });
            continue;
        }
        tokens.push(Token {
            kind: TokKind::Punct(c),
            text: String::new(),
            line,
        });
        i += 1;
    }

    Lexed { tokens, allows }
}

/// Pull `xcheck:allow(a, b)` directives out of one comment's text.
fn collect_allows(comment: &str, line: u32, out: &mut Vec<(u32, String)>) {
    let Some(pos) = comment.find("xcheck:allow(") else {
        return;
    };
    let rest = &comment[pos + "xcheck:allow(".len()..];
    let Some(end) = rest.find(')') else {
        return;
    };
    for id in rest[..end].split(',') {
        let id = id.trim();
        if !id.is_empty() {
            out.push((line, id.to_string()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = r##"
            // std::fs in a comment
            /* File::open in /* a nested */ block */
            let s = "std::fs inside a string";
            let r = r#"File::open inside a raw string"#;
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"fs".to_string()));
        assert!(!ids.contains(&"File".to_string()));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = lex("let c: char = 'a'; fn f<'long>(x: &'long str) {}").tokens;
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::CharLit).collect();
        let lifes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(lifes, vec!["long".to_string(), "long".to_string()]);
    }

    #[test]
    fn escaped_char_literal_is_not_a_string_opener() {
        // The '\'' literal must not swallow the following real string.
        let toks = lex(r#"let q = '\''; let s = "text";"#).tokens;
        let strs: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(strs, vec!["text".to_string()]);
    }

    #[test]
    fn line_numbers_advance_through_all_literal_kinds() {
        let src = "a\n\"two\nlines\"\nb";
        let toks = lex(src).tokens;
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks.last().unwrap().line, 4);
    }

    #[test]
    fn allow_directives_are_collected() {
        let src = "x(); // xcheck:allow(vfs-boundary, lock-order)\ny();";
        let lexed = lex(src);
        assert_eq!(
            lexed.allows,
            vec![
                (1, "vfs-boundary".to_string()),
                (1, "lock-order".to_string())
            ]
        );
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let toks = lex("for i in 0..12 {}").tokens;
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Num)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0".to_string(), "12".to_string()]);
    }
}
