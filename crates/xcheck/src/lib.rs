//! xcheck — a repo-invariant static analyzer for the DataSpread
//! workspace. See `docs/ANALYSIS.md` for the invariants, the suppression
//! syntax, and the analyzer's (deliberate) limits.
//!
//! Six checks, all driven by a hand-rolled token scanner (no syn, no
//! dependencies):
//!
//! * `vfs-boundary` — file I/O goes through `relstore::vfs`
//! * `lock-order` — nested locks follow `docs/CONCURRENCY.md`, and no
//!   registered lock is held across an fsync-class call
//! * `panic-path` — unwrap/expect/panic! in library code vs a committed
//!   burn-down baseline
//! * `wal-tag` — the `WAL_TAGS` registry covers encode/decode/replay/docs
//! * `error-code` — `DsError` Display prefixes are unique and complete
//! * `metric-name` — the `METRICS` registry names are valid, unique,
//!   documented in `docs/OBSERVABILITY.md`, and cover every usage site

pub mod checks;
pub mod lexer;
pub mod model;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use model::SourceFile;

/// One diagnostic. Rendered as `{file}:{line}: [{check}] {message}`
/// (line omitted when 0 — file- or repo-level findings).
#[derive(Clone, Debug)]
pub struct Finding {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line, or 0 for file-level findings.
    pub line: u32,
    /// Check id (`vfs-boundary`, `lock-order`, ...).
    pub check: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    /// Build a finding.
    pub fn new(file: &str, line: u32, check: &'static str, message: String) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            check,
            message,
        }
    }

    /// Stable single-line rendering (what fixtures assert on).
    pub fn render(&self) -> String {
        if self.line == 0 {
            format!("{}: [{}] {}", self.file, self.check, self.message)
        } else {
            format!(
                "{}:{}: [{}] {}",
                self.file, self.line, self.check, self.message
            )
        }
    }
}

/// Where everything lives, relative to `root` — overridable so the
/// fixture corpora can mirror the layout in miniature.
pub struct Config {
    /// Workspace root (contains `Cargo.toml` and `crates/`).
    pub root: PathBuf,
    /// Markdown file holding the `xcheck:lock-order` table.
    pub lock_doc: String,
    /// Markdown file holding the WAL record-tag table.
    pub storage_doc: String,
    /// The WAL module (tag consts, registry, encode/decode, `apply_committed`).
    pub wal_file: String,
    /// The engine replay file (`apply_engine_op`).
    pub engine_replay_file: String,
    /// The `DsError` definition file.
    pub error_file: String,
    /// The metrics registry file (`METRICS` table in `crates/obs`).
    pub obs_file: String,
    /// Markdown file holding the metric catalog table.
    pub obs_doc: String,
    /// Allowlist file: `<check-id> <path-prefix>` lines.
    pub allowlist: String,
    /// Panic-path baseline file: `<count> <path>` lines.
    pub baseline: String,
    /// Crate dir names whose `src/` trees are in panic-path scope
    /// (product crates; harness crates like testkit/slt/xcheck are not).
    pub panic_crates: Vec<String>,
}

impl Config {
    /// Defaults matching the real repo layout.
    pub fn new(root: impl Into<PathBuf>) -> Config {
        Config {
            root: root.into(),
            lock_doc: "docs/CONCURRENCY.md".into(),
            storage_doc: "docs/STORAGE.md".into(),
            wal_file: "crates/relstore/src/wal.rs".into(),
            engine_replay_file: "crates/dataspread/src/persist.rs".into(),
            error_file: "crates/types/src/error.rs".into(),
            obs_file: "crates/obs/src/lib.rs".into(),
            obs_doc: "docs/OBSERVABILITY.md".into(),
            allowlist: "crates/xcheck/xcheck-allow.txt".into(),
            baseline: "crates/xcheck/panic-baseline.txt".into(),
            panic_crates: vec![
                "types".into(),
                "posindex".into(),
                "gridstore".into(),
                "relstore".into(),
                "formula".into(),
                "sql".into(),
                "dataspread".into(),
            ],
        }
    }
}

/// Allowlist entries parsed from `Config::allowlist`.
pub struct Allowlist {
    entries: Vec<(String, String)>, // (check, path-prefix)
}

impl Allowlist {
    /// Load from `root/<rel>`; a missing file is an empty allowlist.
    pub fn load(root: &Path, rel: &str) -> Allowlist {
        let mut entries = Vec::new();
        if let Ok(text) = std::fs::read_to_string(root.join(rel)) {
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                if let Some((check, prefix)) = line.split_once(' ') {
                    entries.push((check.to_string(), prefix.trim().to_string()));
                }
            }
        }
        Allowlist { entries }
    }

    /// True if `check` findings in `file` are allowlisted.
    pub fn allows(&self, check: &str, file: &str) -> bool {
        self.entries
            .iter()
            .any(|(c, p)| c == check && file.starts_with(p.as_str()))
    }
}

/// Measure panic sites per in-scope file. Returned separately from
/// [`run_all`] so `--update-baseline` can reuse the measurement.
pub fn measure_panics(cfg: &Config, files: &[SourceFile]) -> BTreeMap<String, Vec<u32>> {
    let mut counts = BTreeMap::new();
    for f in files {
        let in_scope = cfg
            .panic_crates
            .iter()
            .any(|c| f.rel.starts_with(&format!("crates/{c}/src/")));
        if in_scope {
            counts.insert(f.rel.clone(), checks::panics::panic_sites(f));
        }
    }
    counts
}

/// Load every workspace source file under `root/crates/*/src`.
pub fn load_sources(cfg: &Config) -> std::io::Result<Vec<SourceFile>> {
    let rels = model::workspace_sources(&cfg.root)?;
    let mut files = Vec::with_capacity(rels.len());
    for rel in rels {
        files.push(SourceFile::load(&cfg.root, &rel)?);
    }
    Ok(files)
}

/// Run all six checks; findings come back sorted by (file, line, check).
pub fn run_all(cfg: &Config, files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    let allow = Allowlist::load(&cfg.root, &cfg.allowlist);

    // 1. VFS boundary.
    for f in files {
        if allow.allows(checks::vfs::CHECK, &f.rel) {
            continue;
        }
        out.extend(checks::vfs::check(f));
    }

    // 2. Lock order.
    match checks::locks::load_lock_table(&cfg.root, &cfg.lock_doc) {
        Ok(classes) => {
            for f in files {
                if allow.allows(checks::locks::CHECK, &f.rel) {
                    continue;
                }
                out.extend(checks::locks::check(f, &classes));
            }
        }
        Err(e) => out.push(Finding::new(&cfg.lock_doc, 0, checks::locks::CHECK, e)),
    }

    // 3. Panic paths vs baseline.
    let counts = measure_panics(cfg, files);
    out.extend(checks::panics::check(&counts, &cfg.root, &cfg.baseline));

    // 4. WAL-tag registry.
    let wal = files.iter().find(|f| f.rel == cfg.wal_file);
    let engine = files.iter().find(|f| f.rel == cfg.engine_replay_file);
    match (wal, engine) {
        (Some(wal), Some(engine)) => {
            let storage =
                std::fs::read_to_string(cfg.root.join(&cfg.storage_doc)).unwrap_or_default();
            out.extend(checks::waltags::check(wal, engine, &storage));
        }
        _ => out.push(Finding::new(
            &cfg.wal_file,
            0,
            checks::waltags::CHECK,
            format!(
                "missing `{}` or `{}`; wal-tag check has nothing to verify",
                cfg.wal_file, cfg.engine_replay_file
            ),
        )),
    }

    // 5. Error-code uniqueness.
    match files.iter().find(|f| f.rel == cfg.error_file) {
        Some(f) => out.extend(checks::errors::check(f)),
        None => out.push(Finding::new(
            &cfg.error_file,
            0,
            checks::errors::CHECK,
            "error definition file not found".to_string(),
        )),
    }

    // 6. Metric-name registry.
    match files.iter().find(|f| f.rel == cfg.obs_file) {
        Some(obs) => {
            let doc = std::fs::read_to_string(cfg.root.join(&cfg.obs_doc)).unwrap_or_default();
            out.extend(checks::metrics::check(
                obs,
                &doc,
                &cfg.obs_doc,
                files,
                &allow,
            ));
        }
        None => out.push(Finding::new(
            &cfg.obs_file,
            0,
            checks::metrics::CHECK,
            "metrics registry file not found".to_string(),
        )),
    }

    out.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.check)
            .cmp(&(b.file.as_str(), b.line, b.check))
            .then_with(|| a.message.cmp(&b.message))
    });
    out
}

/// Recompute the panic baseline file contents for the current tree.
pub fn updated_baseline(cfg: &Config, files: &[SourceFile]) -> String {
    let counts = measure_panics(cfg, files)
        .into_iter()
        .map(|(k, v)| (k, v.len()))
        .collect::<BTreeMap<_, _>>();
    checks::panics::render_baseline(&counts)
}
