//! CLI: `cargo run -p xcheck [-- --root PATH] [--update-baseline]`.
//! Prints findings (stable format, sorted) and exits 1 if any.

use std::path::PathBuf;
use std::process::ExitCode;

use xcheck::{load_sources, run_all, updated_baseline, Config};

fn find_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--update-baseline" => update_baseline = true,
            "--help" | "-h" => {
                println!(
                    "xcheck: repo-invariant static analyzer (see docs/ANALYSIS.md)\n\n\
                     USAGE: cargo run -p xcheck [-- --root PATH] [--update-baseline]\n\n\
                     --root PATH          workspace root (default: walk up from cwd)\n\
                     --update-baseline    re-record the panic-path baseline"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }
    let root = match root.or_else(|| find_root(std::env::current_dir().ok()?)) {
        Some(r) => r,
        None => {
            eprintln!("xcheck: could not find a workspace root (Cargo.toml + crates/)");
            return ExitCode::FAILURE;
        }
    };
    let cfg = Config::new(&root);
    let files = match load_sources(&cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!(
                "xcheck: failed to read sources under {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };

    if update_baseline {
        let text = updated_baseline(&cfg, &files);
        let path = root.join(&cfg.baseline);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("xcheck: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("xcheck: baseline re-recorded at {}", cfg.baseline);
    }

    let findings = run_all(&cfg, &files);
    for f in &findings {
        println!("{}", f.render());
    }
    if findings.is_empty() {
        println!(
            "xcheck: {} files clean (vfs-boundary, lock-order, panic-path, wal-tag, error-code, metric-name)",
            files.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("xcheck: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
