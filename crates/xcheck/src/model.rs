//! Workspace model: walking `crates/*/src`, mapping files to module
//! paths, marking `#[cfg(test)]`/`#[test]` regions, and slicing token
//! streams into function bodies.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, TokKind, Token};

/// One lexed source file plus the structural facts checks need.
pub struct SourceFile {
    /// Repo-relative path with `/` separators, e.g. `crates/relstore/src/wal.rs`.
    pub rel: String,
    /// Module path, e.g. `relstore::wal` (`lib.rs` maps to the crate name,
    /// `exec/mod.rs` to `crate::exec`).
    pub module: String,
    /// Token stream.
    pub tokens: Vec<Token>,
    /// Parallel to `tokens`: true if the token sits inside a
    /// `#[cfg(test)]`/`#[test]` item (library checks skip those).
    pub in_test: Vec<bool>,
    /// Suppressions: line -> check ids allowed on that line (or `*`).
    pub allows: HashMap<u32, Vec<String>>,
}

impl SourceFile {
    /// Load and lex one file. `rel` must use `/` separators.
    pub fn load(root: &Path, rel: &str) -> std::io::Result<SourceFile> {
        let src = std::fs::read_to_string(root.join(rel))?;
        Ok(SourceFile::from_source(rel, &src))
    }

    /// Build from in-memory source (used by unit tests).
    pub fn from_source(rel: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let in_test = mark_test_regions(&lexed.tokens);
        let mut allows: HashMap<u32, Vec<String>> = HashMap::new();
        for (line, id) in lexed.allows {
            allows.entry(line).or_default().push(id);
        }
        SourceFile {
            rel: rel.to_string(),
            module: module_path(rel),
            tokens: lexed.tokens,
            in_test,
            allows,
        }
    }

    /// True if `check` is suppressed on `line` — an `xcheck:allow` comment
    /// on the same line or the line above.
    pub fn allowed(&self, check: &str, line: u32) -> bool {
        for l in [line, line.saturating_sub(1)] {
            if let Some(ids) = self.allows.get(&l) {
                if ids.iter().any(|id| id == check || id == "*") {
                    return true;
                }
            }
        }
        false
    }
}

/// `crates/<dir>/src/<path>.rs` -> `<dir>::<path with :: separators>`,
/// dropping `lib`/`main` and folding `mod.rs` into its directory.
pub fn module_path(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    // Expect crates/<crate>/src/...; anything else gets a best-effort path.
    let (krate, under_src) = if parts.len() >= 3 && parts[0] == "crates" && parts[2] == "src" {
        (parts[1], &parts[3..])
    } else {
        return rel.trim_end_matches(".rs").replace('/', "::");
    };
    let mut out = vec![krate.to_string()];
    for (i, seg) in under_src.iter().enumerate() {
        let last = i + 1 == under_src.len();
        if last {
            let stem = seg.trim_end_matches(".rs");
            if stem == "lib" || stem == "main" || stem == "mod" {
                continue;
            }
            out.push(stem.to_string());
        } else {
            out.push(seg.to_string());
        }
    }
    out.join("::")
}

/// Mark every token belonging to an item annotated `#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, ...))]` etc. An attribute counts as a
/// test attribute when its identifiers include `test` but not `not`
/// (`#[cfg(not(test))]` is live library code and must stay scanned).
fn mark_test_regions(tokens: &[Token]) -> Vec<bool> {
    let n = tokens.len();
    let mut in_test = vec![false; n];
    let mut i = 0usize;
    while i < n {
        if !(tokens[i].is_punct('#') && i + 1 < n && tokens[i + 1].is_punct('[')) {
            i += 1;
            continue;
        }
        let attr_start = i;
        // A run of consecutive attributes: treat as one block, test if any is.
        let mut any_test = false;
        let mut j = i;
        while j + 1 < n && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[') {
            let (end, is_test) = scan_attribute(tokens, j + 1);
            any_test |= is_test;
            j = end;
        }
        if !any_test {
            i = j;
            continue;
        }
        // Skip the annotated item: to the matching `}` of its first brace
        // block, or to a top-level `;` (e.g. `#[cfg(test)] mod tests;`).
        let mut depth_paren = 0i32;
        let mut depth_brace = 0i32;
        let mut k = j;
        let mut end = n;
        while k < n {
            match tokens[k].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => depth_paren += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => depth_paren -= 1,
                TokKind::Punct('{') => depth_brace += 1,
                TokKind::Punct('}') => {
                    depth_brace -= 1;
                    if depth_brace == 0 {
                        end = k + 1;
                        break;
                    }
                }
                TokKind::Punct(';') if depth_brace == 0 && depth_paren == 0 => {
                    end = k + 1;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        for f in in_test.iter_mut().take(end.min(n)).skip(attr_start) {
            *f = true;
        }
        i = end;
    }
    in_test
}

/// Scan one attribute starting at its `[` token. Returns (index just past
/// the closing `]`, whether it is a test attribute).
fn scan_attribute(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0i32;
    let mut has_test = false;
    let mut has_not = false;
    let mut k = open;
    while k < tokens.len() {
        match &tokens[k].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (k + 1, has_test && !has_not);
                }
            }
            TokKind::Ident => {
                if tokens[k].text == "test" || tokens[k].text == "tests" {
                    has_test = true;
                }
                if tokens[k].text == "not" {
                    has_not = true;
                }
            }
            _ => {}
        }
        k += 1;
    }
    (tokens.len(), has_test && !has_not)
}

/// A function's name and the token range of its body (exclusive of the
/// braces themselves).
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token index just past the opening `{`.
    pub body_start: usize,
    /// Token index of the closing `}`.
    pub body_end: usize,
}

/// Extract non-test function bodies. Nested `fn` items are returned as
/// their own spans; callers that walk a body should skip inner `fn`
/// ranges (see [`skip_nested_fn`]).
pub fn functions(file: &SourceFile) -> Vec<FnSpan> {
    let t = &file.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < t.len() {
        if file.in_test[i] || !t[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = t.get(i + 1) else { break };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        // Find the body's `{`, or `;` for bodiless trait methods. Track
        // nesting so `where F: Fn(...)` bounds and default generic args
        // don't fool us; the first top-level `{` is the body.
        let mut j = i + 2;
        let mut paren = 0i32;
        let mut angle_guard = 0i32; // crude <> tracking, enough for sigs here
        let mut body_start = None;
        while j < t.len() {
            match t[j].kind {
                TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
                TokKind::Punct(')') | TokKind::Punct(']') => paren -= 1,
                TokKind::Punct('<') => angle_guard += 1,
                TokKind::Punct('>') => angle_guard = (angle_guard - 1).max(0),
                TokKind::Punct('{') if paren == 0 => {
                    body_start = Some(j + 1);
                    break;
                }
                TokKind::Punct(';') if paren == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(bs) = body_start else {
            i = j + 1;
            continue;
        };
        // Match braces to the body's end.
        let mut depth = 1i32;
        let mut k = bs;
        while k < t.len() && depth > 0 {
            match t[k].kind {
                TokKind::Punct('{') => depth += 1,
                TokKind::Punct('}') => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        out.push(FnSpan {
            name: name_tok.text.clone(),
            line: t[i].line,
            body_start: bs,
            body_end: k.saturating_sub(1),
        });
        // Continue scanning *inside* the body too (nested fns become
        // their own spans); the walk just moves past the name.
        i += 2;
    }
    out
}

/// If `idx` is the `fn` keyword of a nested function inside a body walk,
/// return the index just past that function's closing `}` so the caller
/// can skip it. Otherwise returns `idx`.
pub fn skip_nested_fn(tokens: &[Token], idx: usize) -> usize {
    if !tokens[idx].is_ident("fn") {
        return idx;
    }
    let mut j = idx + 1;
    let mut paren = 0i32;
    while j < tokens.len() {
        match tokens[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => paren += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => paren -= 1,
            TokKind::Punct('{') if paren == 0 => break,
            TokKind::Punct(';') if paren == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    if j >= tokens.len() {
        return tokens.len();
    }
    let mut depth = 1i32;
    let mut k = j + 1;
    while k < tokens.len() && depth > 0 {
        match tokens[k].kind {
            TokKind::Punct('{') => depth += 1,
            TokKind::Punct('}') => depth -= 1,
            _ => {}
        }
        k += 1;
    }
    k
}

/// Collect every `.rs` file under `crates/*/src` in `root`, sorted by
/// repo-relative path for stable output.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<String>> {
    let mut rels = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let entry = entry?;
        if entry.file_type()?.is_dir() {
            crate_dirs.push(entry.path());
        }
    }
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            walk_rs(&src, &mut |p| {
                if let Ok(rel) = p.strip_prefix(root) {
                    rels.push(rel.to_string_lossy().replace('\\', "/"));
                }
            })?;
        }
    }
    rels.sort();
    Ok(rels)
}

fn walk_rs(dir: &Path, f: &mut dyn FnMut(&Path)) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, f)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            f(&path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_paths() {
        assert_eq!(module_path("crates/relstore/src/lib.rs"), "relstore");
        assert_eq!(module_path("crates/relstore/src/wal.rs"), "relstore::wal");
        assert_eq!(
            module_path("crates/dataspread/src/exec/mod.rs"),
            "dataspread::exec"
        );
        assert_eq!(
            module_path("crates/dataspread/src/exec/planner.rs"),
            "dataspread::exec::planner"
        );
    }

    #[test]
    fn cfg_test_items_are_marked() {
        let src = r#"
            fn live() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { y.unwrap(); }
            }
            fn also_live() {}
        "#;
        let f = SourceFile::from_source("crates/demo/src/lib.rs", src);
        let live_idx = f.tokens.iter().position(|t| t.is_ident("live")).unwrap();
        let y_idx = f.tokens.iter().position(|t| t.is_ident("y")).unwrap();
        let also_idx = f
            .tokens
            .iter()
            .position(|t| t.is_ident("also_live"))
            .unwrap();
        assert!(!f.in_test[live_idx]);
        assert!(f.in_test[y_idx]);
        assert!(!f.in_test[also_idx]);
    }

    #[test]
    fn cfg_not_test_stays_live() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }";
        let f = SourceFile::from_source("crates/demo/src/lib.rs", src);
        let x_idx = f.tokens.iter().position(|t| t.is_ident("x")).unwrap();
        assert!(!f.in_test[x_idx]);
    }

    #[test]
    fn function_spans_cover_bodies() {
        let src = "fn a() { inner(); }\nfn b(x: u8) -> u8 { x }";
        let f = SourceFile::from_source("crates/demo/src/lib.rs", src);
        let fns = functions(&f);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "a");
        assert_eq!(fns[1].name, "b");
        let body: Vec<_> = f.tokens[fns[0].body_start..fns[0].body_end]
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(body, vec!["inner".to_string()]);
    }
}
