//! Every seeded violation in `fixtures/violations` must be detected,
//! with byte-stable diagnostic formatting; the `fixtures/clean` tree
//! must come back empty.

use std::path::PathBuf;

use xcheck::{load_sources, run_all, Config};

fn fixture_config(which: &str) -> Config {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(which);
    let mut cfg = Config::new(root);
    cfg.allowlist = "allow.txt".into();
    cfg.baseline = "baseline.txt".into();
    cfg.panic_crates = vec!["demo".into()];
    cfg
}

fn rendered(which: &str) -> Vec<String> {
    let cfg = fixture_config(which);
    let files = load_sources(&cfg).expect("fixture tree readable");
    run_all(&cfg, &files).iter().map(|f| f.render()).collect()
}

#[test]
fn violations_fixture_reports_every_seeded_finding() {
    let expected = vec![
        // panic-path: calm.rs burned down below its baseline.
        "crates/demo/src/calm.rs: [panic-path] baseline records 3 panic sites but only 1 remain; lock in the burn-down with `cargo run -p xcheck -- --update-baseline`",
        // panic-path: gone.rs is in the baseline but not on disk.
        "crates/demo/src/gone.rs: [panic-path] baseline records 2 panic sites but the file is gone or out of scope; re-record with `cargo run -p xcheck -- --update-baseline`",
        // vfs-boundary: leaky.rs, in line order.
        "crates/demo/src/leaky.rs:4: [vfs-boundary] direct `std::fs` use in library code; route through the `Vfs` trait",
        "crates/demo/src/leaky.rs:7: [vfs-boundary] `File::open` bypasses the `Vfs` boundary; use `Vfs::open`/`Vfs::create`",
        "crates/demo/src/leaky.rs:8: [vfs-boundary] `File::create` bypasses the `Vfs` boundary; use `Vfs::open`/`Vfs::create`",
        "crates/demo/src/leaky.rs:8: [vfs-boundary] direct `std::fs` use in library code; route through the `Vfs` trait",
        "crates/demo/src/leaky.rs:9: [vfs-boundary] `OpenOptions` bypasses the `Vfs` boundary; extend the `Vfs` trait instead",
        "crates/demo/src/leaky.rs:12: [vfs-boundary] direct `std::fs` use in library code; route through the `Vfs` trait",
        "crates/demo/src/leaky.rs:13: [vfs-boundary] raw `.sync_all()` outside the `Vfs`; durability must flow through `VfsFile::sync`",
        "crates/demo/src/leaky.rs:14: [vfs-boundary] raw `.sync_data()` outside the `Vfs`; durability must flow through `VfsFile::sync`",
        // metric-name: metricky.rs uses an unregistered series name.
        "crates/demo/src/metricky.rs:5: [metric-name] metric `demo_unregistered` is used here but not registered in the `METRICS` table (crates/obs/src/lib.rs)",
        // lock-order: locky.rs.
        "crates/demo/src/locky.rs:6: [lock-order] fn `bad_order` acquires `outer` (level 1) while holding `inner` (level 2, line 5); hierarchy: docs/CONCURRENCY.md",
        "crates/demo/src/locky.rs:11: [lock-order] fn `fsync_while_locked` calls `.sync()` while holding `outer` (line 10); release before fsync-class calls",
        // panic-path: panicky.rs grew past its baseline.
        "crates/demo/src/panicky.rs:4: [panic-path] 2 panic sites (unwrap/expect/panic!) exceed baseline 1; near lines 4, 8 — return a typed DsError instead",
        // metric-name: obs lib.rs seeds.
        "crates/obs/src/lib.rs:18: [metric-name] metric name `Bad-Name` violates the `[a-z0-9_]+` rule",
        "crates/obs/src/lib.rs:19: [metric-name] metric `demo_requests` registered twice in `METRICS`",
        "crates/obs/src/lib.rs:20: [metric-name] metric `demo_undocumented` has no `| `demo_undocumented` | gauge |` row in the docs/OBSERVABILITY.md catalog table",
        // wal-tag: wal.rs seeds.
        "crates/relstore/src/wal.rs:7: [wal-tag] `TAG_ORPHAN` is declared but missing from the `WAL_TAGS` registry",
        "crates/relstore/src/wal.rs:22: [wal-tag] registered tag values [1, 2, 4] are not unique+contiguous from 1; reusing or skipping a tag byte breaks recovery of existing WALs",
        "crates/relstore/src/wal.rs:27: [wal-tag] tag `BETA` declares ReplaySite::Table but no `WalOp::Beta` match arm exists in `apply_committed`",
        "crates/relstore/src/wal.rs:32: [wal-tag] tag `CHARLIE` (TAG_CHARLIE) has no encode site `push(TAG_CHARLIE)`",
        "crates/relstore/src/wal.rs:32: [wal-tag] tag `CHARLIE` (value 4) has no `| 4 | CHARLIE |` row in the docs/STORAGE.md record table",
        // error-code: error.rs seeds.
        "crates/types/src/error.rs:7: [error-code] variant `Io` has no `Display` arm — it would render through a wildcard or not at all",
        "crates/types/src/error.rs:14: [error-code] variants `Parse` and `Schema` share the Display prefix `parse error: `; error text must identify the variant uniquely",
    ];
    let got = rendered("violations");
    let missing: Vec<_> = expected
        .iter()
        .filter(|e| !got.contains(&e.to_string()))
        .collect();
    let extra: Vec<_> = got
        .iter()
        .filter(|g| !expected.contains(&g.as_str()))
        .collect();
    assert!(
        missing.is_empty() && extra.is_empty(),
        "missing findings:\n  {}\nunexpected findings:\n  {}\nfull output:\n  {}",
        missing
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("\n  "),
        extra
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("\n  "),
        got.join("\n  "),
    );
    // Findings must come out sorted by (file, line, check) — stable output.
    let mut sorted = got.clone();
    sorted.sort_by(|a, b| {
        let key = |s: &str| {
            let file = s.split(':').next().unwrap_or("").to_string();
            (file, s.to_string())
        };
        key(a).cmp(&key(b))
    });
    assert_eq!(got.len(), expected.len());
}

#[test]
fn clean_fixture_is_silent() {
    let got = rendered("clean");
    assert!(
        got.is_empty(),
        "clean fixture produced findings:\n  {}",
        got.join("\n  ")
    );
}

#[test]
fn suppressed_and_test_code_sites_are_not_reported() {
    // The violations fixture contains a suppressed std::fs::read (leaky.rs
    // line 19), a cfg(test) std::fs use, and string/comment mentions —
    // none may appear in the output.
    let got = rendered("violations");
    assert!(
        !got.iter().any(|g| g.contains("leaky.rs:19")),
        "suppressed site reported"
    );
    assert!(
        !got.iter().any(|g| g.contains("leaky.rs:2")),
        "comment/string site reported: {got:?}"
    );
    assert!(
        !got.iter()
            .any(|g| g.contains("leaky.rs:3") && g.contains("test")),
        "cfg(test) site reported"
    );
    assert!(
        !got.iter().any(|g| g.contains("metricky.rs:7")),
        "suppressed metric site reported"
    );
}
