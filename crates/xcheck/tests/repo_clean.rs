//! The analyzer's own acceptance gate: the real repository must be
//! finding-free. If this test fails, either fix the violation or — for
//! a justified exception — add an `xcheck:allow` comment or allowlist
//! entry with a reason.

use std::path::PathBuf;

use xcheck::{load_sources, run_all, Config};

#[test]
fn real_repo_has_zero_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");
    let cfg = Config::new(root);
    let files = load_sources(&cfg).expect("workspace sources readable");
    assert!(
        files.len() > 50,
        "expected the full workspace, got {} files",
        files.len()
    );
    let findings = run_all(&cfg, &files);
    assert!(
        findings.is_empty(),
        "xcheck found {} violation(s) in the repo:\n  {}",
        findings.len(),
        findings
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n  ")
    );
}
