#!/usr/bin/env bash
# Capture BENCH_JSON lines from one bench target into a trajectory file.
#
# Usage:
#   scripts/capture_bench.sh <bench-name> [out-file]
#
# Examples:
#   scripts/capture_bench.sh concurrent BENCH_6.json
#   scripts/capture_bench.sh query            # prints to stdout
#
# Every bench prints machine-readable lines prefixed `BENCH_JSON `; some
# also dump the workbook metrics registry as a `METRICS_JSON ` line (see
# docs/OBSERVABILITY.md). This script runs the bench in release mode,
# strips the prefixes, and writes one JSON object per line (JSONL) — the
# metrics dump becomes `{"bench":"<name>/metrics","snapshot":{...}}`.
# Commit the result as BENCH_<pr>.json so the numbers travel with the
# change that produced them.

set -euo pipefail

bench="${1:?usage: capture_bench.sh <bench-name> [out-file]}"
out="${2:-}"

raw=$(cargo bench -p dataspread --bench "$bench" 2>&1) || {
    echo "$raw" >&2
    exit 1
}

json=$(printf '%s\n' "$raw" | grep '^BENCH_JSON ' | sed 's/^BENCH_JSON //')
if [ -z "$json" ]; then
    echo "error: bench '$bench' emitted no BENCH_JSON lines" >&2
    exit 1
fi

# Append each registry dump (if the bench emits any) as its own record.
metrics=$(printf '%s\n' "$raw" | grep '^METRICS_JSON ' | sed 's/^METRICS_JSON //' || true)
if [ -n "$metrics" ]; then
    while IFS= read -r snap; do
        json="$json
{\"bench\":\"$bench/metrics\",\"snapshot\":$snap}"
    done <<< "$metrics"
fi

if [ -n "$out" ]; then
    printf '%s\n' "$json" > "$out"
    echo "wrote $(printf '%s\n' "$json" | wc -l | tr -d ' ') records to $out" >&2
else
    printf '%s\n' "$json"
fi
